(* Route-request aggregation layer: piggybacking, suppression, RREP
   fan-out, codec round-trips for the aggregate option block, and the
   loop-freedom monitor staying authoritative with the layer on. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Node_id.of_int

let ldr_agg_factory ?(config = Routing.Aggregation.default) () =
  Routing.Aggregation.wrap ~config (Ldr.Protocol.factory ())

let aodv_agg_factory ?(config = Routing.Aggregation.default) () =
  Routing.Aggregation.wrap ~config (Aodv.factory ())

(* ---- Window merge / piggybacking -------------------------------------- *)

(* Two discoveries started back-to-back at the same node must leave in
   one aggregate transmission instead of two floods. *)
let window_merge () =
  let engine = Engine.create () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(ldr_agg_factory ()) ~n:5 ()
  in
  (* 0 - 1 - 2 with leaves 3 and 4 on node 2. *)
  Experiment.Testnet.connect_chain net [ 0; 1; 2; 3 ];
  Experiment.Testnet.connect net 2 4;
  Experiment.Testnet.origin net ~src:0 ~dst:3;
  Experiment.Testnet.origin net ~src:0 ~dst:4;
  Experiment.Testnet.run net ~for_:(Time.sec 5.);
  let m = Experiment.Testnet.metrics net in
  checki "both flows delivered" 2 (Experiment.Metrics.delivered m);
  checkb "floods were piggybacked" true
    (Experiment.Metrics.event_count m "rreq_aggregated" >= 1);
  Experiment.Testnet.audit_loops net;
  checki "no loops" 0 (Experiment.Metrics.loop_violations m)

let window_merge_aodv () =
  let engine = Engine.create () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(aodv_agg_factory ()) ~n:5 ()
  in
  Experiment.Testnet.connect_chain net [ 0; 1; 2; 3 ];
  Experiment.Testnet.connect net 2 4;
  Experiment.Testnet.origin net ~src:0 ~dst:3;
  Experiment.Testnet.origin net ~src:0 ~dst:4;
  Experiment.Testnet.run net ~for_:(Time.sec 5.);
  let m = Experiment.Testnet.metrics net in
  checki "both flows delivered" 2 (Experiment.Metrics.delivered m);
  checkb "floods were piggybacked" true
    (Experiment.Metrics.event_count m "rreq_aggregated" >= 1)

(* ---- Suppression + RREP fan-out ---------------------------------------- *)

(* Topology: 0 and 4 hang off relay 1; 1 - 2 - 3 is the trunk.  Both 0
   and 4 want routes to 3 at nearly the same time.  Node 1 must forward
   only one of the two floods, and the single returning RREP must be
   fanned out so both origins' data is delivered. *)
let fanout_serves_suppressed_origin () =
  let engine = Engine.create () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(ldr_agg_factory ()) ~n:5 ()
  in
  Experiment.Testnet.connect_chain net [ 0; 1; 2; 3 ];
  Experiment.Testnet.connect net 1 4;
  Experiment.Testnet.origin net ~src:0 ~dst:3;
  ignore
    (Engine.at engine (Time.ms 30.) (fun () ->
         Experiment.Testnet.origin net ~src:4 ~dst:3));
  Experiment.Testnet.run net ~for_:(Time.sec 5.);
  let m = Experiment.Testnet.metrics net in
  checki "both flows delivered" 2 (Experiment.Metrics.delivered m);
  checkb "a flood was suppressed" true
    (Experiment.Metrics.event_count m "rreq_suppressed" >= 1);
  checkb "the reply was fanned out" true
    (Experiment.Metrics.event_count m "rrep_fanout" >= 1);
  Experiment.Testnet.audit_loops net;
  checki "no loops" 0 (Experiment.Metrics.loop_violations m)

(* With fan-out disabled a relay may never absorb another origin's
   flood — only originations are deferred — and everything still
   delivers (via the inner ring retry). *)
let no_fanout_still_delivers () =
  let config = { Routing.Aggregation.default with fanout = false } in
  let engine = Engine.create () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(ldr_agg_factory ~config ()) ~n:5 ()
  in
  Experiment.Testnet.connect_chain net [ 0; 1; 2; 3 ];
  Experiment.Testnet.connect net 1 4;
  Experiment.Testnet.origin net ~src:0 ~dst:3;
  ignore
    (Engine.at engine (Time.ms 30.) (fun () ->
         Experiment.Testnet.origin net ~src:4 ~dst:3));
  Experiment.Testnet.run net ~for_:(Time.sec 10.);
  let m = Experiment.Testnet.metrics net in
  checki "both flows delivered" 2 (Experiment.Metrics.delivered m);
  checki "no fan-out happened" 0 (Experiment.Metrics.event_count m "rrep_fanout")

(* A stock (unwrapped) agent must interoperate with aggregating
   neighbours: aggregates unpack inside the inner recv. *)
let stock_node_understands_aggregates () =
  let engine = Engine.create () in
  let factories =
    [|
      ldr_agg_factory ();
      Ldr.Protocol.factory ();
      ldr_agg_factory ();
      Ldr.Protocol.factory ();
      Ldr.Protocol.factory ();
    |]
  in
  let net = Experiment.Testnet.create_custom ~engine ~factories () in
  Experiment.Testnet.connect_chain net [ 0; 1; 2; 3 ];
  Experiment.Testnet.connect net 2 4;
  Experiment.Testnet.origin net ~src:0 ~dst:3;
  Experiment.Testnet.origin net ~src:0 ~dst:4;
  Experiment.Testnet.run net ~for_:(Time.sec 5.);
  let m = Experiment.Testnet.metrics net in
  checki "both flows delivered through a mixed net" 2
    (Experiment.Metrics.delivered m)

(* ---- Codec round-trip --------------------------------------------------- *)

let ldr_rreq ~dst ~origin ~rreq_id =
  {
    Ldr_msg.dst = nid dst;
    dst_sn = None;
    rreq_id;
    origin = nid origin;
    origin_sn = { Seqnum.stamp = 3; counter = 9 };
    fd = Wire.Ldr.infinite_distance;
    answer_dist = 7;
    dist = 2;
    ttl = 5;
    reset = false;
    no_reverse = false;
    unicast_probe = false;
  }

let aodv_rreq ~dst ~origin ~rreq_id =
  {
    Aodv_msg.dst = nid dst;
    dst_sn = Some 17;
    rreq_id;
    origin = nid origin;
    origin_sn = 4;
    hop_count = 1;
    ttl = 7;
  }

let ldr_agg_roundtrip () =
  let msg =
    Ldr_msg.Rreq_agg
      [
        ldr_rreq ~dst:3 ~origin:0 ~rreq_id:1;
        ldr_rreq ~dst:4 ~origin:0 ~rreq_id:2;
        ldr_rreq ~dst:9 ~origin:6 ~rreq_id:41;
      ]
  in
  let b = Wire.Ldr.encode msg in
  checki "length matches encoded_length" (Wire.Ldr.encoded_length msg)
    (Bytes.length b);
  checki "header + 3 nested rreqs" (4 + (3 * 44)) (Bytes.length b);
  (match Wire.Ldr.decode b with
  | Ok m -> checkb "round-trips" true (m = msg)
  | Error e -> Alcotest.fail (Wire.error_to_string e));
  (* Truncated aggregates must be rejected, not mis-parsed. *)
  match Wire.Ldr.decode (Bytes.sub b 0 (Bytes.length b - 1)) with
  | Ok _ -> Alcotest.fail "truncated aggregate accepted"
  | Error _ -> ()

let aodv_agg_roundtrip () =
  let msg =
    Aodv_msg.Rreq_agg
      [ aodv_rreq ~dst:3 ~origin:0 ~rreq_id:1; aodv_rreq ~dst:4 ~origin:2 ~rreq_id:9 ]
  in
  let b = Wire.Aodv.encode msg in
  checki "length matches encoded_length" (Wire.Aodv.encoded_length msg)
    (Bytes.length b);
  checki "header + 2 nested rreqs" (4 + (2 * 24)) (Bytes.length b);
  (match Wire.Aodv.decode b with
  | Ok m -> checkb "round-trips" true (m = msg)
  | Error e -> Alcotest.fail (Wire.error_to_string e));
  match Wire.Aodv.decode (Wire.Aodv.encode (Aodv_msg.Rreq_agg [])) with
  | Ok _ -> Alcotest.fail "empty aggregate accepted"
  | Error _ -> ()

let agg_roundtrip_qcheck =
  let gen_member =
    QCheck.Gen.(
      let* dst = int_bound 1000 in
      let* origin = int_bound 1000 in
      let* rreq_id = int_bound 0xffff in
      let* ttl = int_range 1 35 in
      let* dist = int_bound 30 in
      return
        {
          (ldr_rreq ~dst ~origin ~rreq_id) with
          ttl;
          dist;
          fd = (if dist mod 2 = 0 then Wire.Ldr.infinite_distance else dist + 1);
        })
  in
  let gen = QCheck.Gen.(list_size (int_range 1 12) gen_member) in
  QCheck.Test.make ~name:"ldr aggregate encode/decode round-trip" ~count:200
    (QCheck.make gen) (fun members ->
      let msg = Ldr_msg.Rreq_agg members in
      match Wire.Ldr.decode (Wire.Ldr.encode msg) with
      | Ok m -> m = msg
      | Error _ -> false)

(* ---- Loop-freedom monitor with aggregation on --------------------------- *)

let scenario ?(seed = 7) ?(duration = 30.) () =
  {
    Experiment.Scenario.label = "agg-test";
    num_nodes = 20;
    terrain = Geom.Terrain.create ~width:800. ~height:400.;
    placement = Experiment.Scenario.Uniform;
    speed_min = 1.;
    speed_max = 10.;
    pause = Time.sec 0.;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = 6;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec duration;
        startup_window = Time.sec 2.;
      };
    protocol = Experiment.Scenario.ldr_agg;
    net = Net.Params.default;
    seed;
    audit_loops = true;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Experiment.Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

(* A healthy LDR-AGG run must keep the monitor silent: the wrapper may
   suppress and replicate control packets but never weakens the
   invariants the inner machine maintains. *)
let monitor_silent_with_aggregation () =
  let outcome = Experiment.Runner.run ~monitor:true (scenario ()) in
  checki "no invariant violations" 0
    outcome.Experiment.Runner.invariant_violations;
  checki "no successor loops" 0
    (Experiment.Metrics.loop_violations outcome.Experiment.Runner.metrics);
  checkb "delivered some" true
    (Experiment.Metrics.delivered outcome.Experiment.Runner.metrics > 0)

(* ...and a forged stale-seqno RREP must still trip it — aggregation
   must not blind the monitor to real corruption. *)
let monitor_still_catches_fault () =
  let injected = ref (ref false) in
  let outcome =
    Experiment.Runner.run
      ~prepare:(fun sim ->
        ignore (Experiment.Runner.attach_monitor ~quiet:true sim);
        injected :=
          (Experiment.Fault.stale_seqno sim ~at:(Time.sec 10.))
            .Experiment.Fault.injected)
      (scenario ~duration:20. ())
  in
  checkb "fault injected" true !(!injected);
  checkb "monitor fired through the aggregation layer" true
    (outcome.Experiment.Runner.invariant_violations >= 1)

let () =
  Alcotest.run "aggregation"
    [
      ( "piggyback",
        [
          Alcotest.test_case "window merge (ldr)" `Quick window_merge;
          Alcotest.test_case "window merge (aodv)" `Quick window_merge_aodv;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "rrep fan-out" `Quick
            fanout_serves_suppressed_origin;
          Alcotest.test_case "fanout off still delivers" `Quick
            no_fanout_still_delivers;
          Alcotest.test_case "mixed stock/agg net" `Quick
            stock_node_understands_aggregates;
        ] );
      ( "codec",
        [
          Alcotest.test_case "ldr aggregate round-trip" `Quick ldr_agg_roundtrip;
          Alcotest.test_case "aodv aggregate round-trip" `Quick
            aodv_agg_roundtrip;
          QCheck_alcotest.to_alcotest agg_roundtrip_qcheck;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "silent on clean run" `Quick
            monitor_silent_with_aggregation;
          Alcotest.test_case "still catches stale seqno" `Quick
            monitor_still_catches_fault;
        ] );
    ]
