let magic = 0xa1b23c4d
let linktype = 147 (* DLT_USER0 *)
let pseudo_header_bytes = 20
let snaplen = 0x40000

type sink = { oc : out_channel; scratch : Wire.Writer.t }

let flush_scratch s =
  output_bytes s.oc (Wire.Writer.contents s.scratch);
  Wire.Writer.clear s.scratch

let open_sink path =
  let oc = open_out_bin path in
  let s = { oc; scratch = Wire.Writer.create ~capacity:1024 () } in
  let w = s.scratch in
  Wire.Writer.u32 w magic;
  Wire.Writer.u16 w 2 (* version major *);
  Wire.Writer.u16 w 4 (* version minor *);
  Wire.Writer.u32 w 0 (* thiszone *);
  Wire.Writer.u32 w 0 (* sigfigs *);
  Wire.Writer.u32 w snaplen;
  Wire.Writer.u32 w linktype;
  flush_scratch s;
  s

let dst_int = function
  | Frame.Broadcast -> 0xffffffff
  | Frame.Unicast d -> Packets.Node_id.to_int d

let write s ~time frame =
  let encoded = Frame.encode frame in
  let len = pseudo_header_bytes + Bytes.length encoded in
  let ns = Sim.Time.to_ns time in
  let w = s.scratch in
  Wire.Writer.u32 w (Int64.to_int (Int64.div ns 1_000_000_000L));
  Wire.Writer.u32 w (Int64.to_int (Int64.rem ns 1_000_000_000L));
  Wire.Writer.u32 w len (* incl_len *);
  Wire.Writer.u32 w len (* orig_len *);
  Wire.Writer.u64 w ns;
  Wire.Writer.u32 w (Packets.Node_id.to_int frame.Frame.src);
  Wire.Writer.u32 w (dst_int frame.Frame.dst);
  Wire.Writer.u8 w (Frame.family frame);
  Wire.Writer.u8 w 0;
  Wire.Writer.u16 w 0;
  flush_scratch s;
  output_bytes s.oc encoded

let close s = close_out s.oc

type record = {
  r_time : Sim.Time.t;
  r_src : Packets.Node_id.t;
  r_dst : Frame.dst;
  r_family : int;
  r_len : int;
  r_frame : (Frame.t, Wire.error) result;
}

let is_pcap_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let head = really_input_string ic 4 in
      close_in ic;
      String.length head = 4
      && Char.code head.[0] = 0xa1
      && Char.code head.[1] = 0xb2
      && Char.code head.[2] = 0x3c
      && Char.code head.[3] = 0x4d
  | exception End_of_file -> false

let ( let* ) = Result.bind

let str_error where = function
  | Ok v -> Ok v
  | Error (e : Wire.error) ->
      Error (Printf.sprintf "%s: %s" where (Wire.error_to_string e))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let buf = Bytes.unsafe_of_string contents in
      let r = Wire.Reader.of_bytes buf in
      let* m = str_error "global header" (Wire.Reader.u32 r) in
      let* () = if m = magic then Ok () else Error "global header: bad magic" in
      let* _vmaj = str_error "global header" (Wire.Reader.u16 r) in
      let* _vmin = str_error "global header" (Wire.Reader.u16 r) in
      let* _zone = str_error "global header" (Wire.Reader.u32 r) in
      let* _sig = str_error "global header" (Wire.Reader.u32 r) in
      let* _snap = str_error "global header" (Wire.Reader.u32 r) in
      let* lt = str_error "global header" (Wire.Reader.u32 r) in
      let* () =
        if lt = linktype then Ok () else Error "global header: wrong linktype"
      in
      let rec records acc =
        if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
        else
          let* ts_sec = str_error "record header" (Wire.Reader.u32 r) in
          let* ts_nsec = str_error "record header" (Wire.Reader.u32 r) in
          let* incl_len = str_error "record header" (Wire.Reader.u32 r) in
          let* orig_len = str_error "record header" (Wire.Reader.u32 r) in
          if incl_len <> orig_len then Error "record: truncated capture"
          else if incl_len < pseudo_header_bytes + Wire.Mac.ack_bytes then
            Error "record: implausibly short packet"
          else if Wire.Reader.remaining r < incl_len then
            Error "record: packet data past end of file"
          else
            let* ns64 = str_error "pseudo-header" (Wire.Reader.u64 r) in
            let ns = Int64.to_int ns64 in
            let* () =
              if
                ns >= 0
                && Int64.div ns64 1_000_000_000L = Int64.of_int ts_sec
                && Int64.rem ns64 1_000_000_000L = Int64.of_int ts_nsec
              then Ok ()
              else Error "pseudo-header: timestamp disagrees with record header"
            in
            let* src = str_error "pseudo-header" (Wire.Reader.u32 r) in
            let* dst = str_error "pseudo-header" (Wire.Reader.u32 r) in
            let* family = str_error "pseudo-header" (Wire.Reader.u8 r) in
            let* pad1 = str_error "pseudo-header" (Wire.Reader.u8 r) in
            let* pad2 = str_error "pseudo-header" (Wire.Reader.u16 r) in
            let* () =
              if pad1 = 0 && pad2 = 0 then Ok ()
              else Error "pseudo-header: nonzero padding"
            in
            let flen = incl_len - pseudo_header_bytes in
            let start = Wire.Reader.pos r in
            let* () = str_error "packet data" (Wire.Reader.skip r flen) in
            let frame_bytes = Bytes.sub buf start flen in
            let r_src = Packets.Node_id.of_int src in
            let r_dst =
              if dst = 0xffffffff then Frame.Broadcast
              else Frame.Unicast (Packets.Node_id.of_int dst)
            in
            let r_frame =
              match Frame.decode ~family ~ack_src:r_src frame_bytes with
              | Error _ as e -> e
              | Ok f ->
                  if
                    Packets.Node_id.equal f.Frame.src r_src
                    && Frame.dst_equal f.Frame.dst r_dst
                  then Ok f
                  else
                    Error
                      {
                        Wire.offset = 0;
                        reason = "frame addresses disagree with pseudo-header";
                      }
            in
            records
              ({
                 r_time = Sim.Time.unsafe_of_ns ns;
                 r_src;
                 r_dst;
                 r_family = family;
                 r_len = flen;
                 r_frame;
               }
              :: acc)
      in
      records []

let class_counts records =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun rec_ ->
      let cls =
        match rec_.r_frame with
        | Ok f -> Frame.class_name f
        | Error _ -> "UNDECODABLE"
      in
      let count, bytes =
        match Hashtbl.find_opt tbl cls with Some c -> c | None -> (0, 0)
      in
      Hashtbl.replace tbl cls (count + 1, bytes + rec_.r_len))
    records;
  Hashtbl.fold (fun cls c acc -> (cls, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
