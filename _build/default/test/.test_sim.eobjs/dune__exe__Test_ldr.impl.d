test/test_ldr.ml: Alcotest Array Conditions Config Engine Experiment Ldr List Node_id Option Packets Protocol QCheck QCheck_alcotest Rng Route_table Routing Seqnum Sim Stdlib Time
