lib/stats/quantile.mli:
