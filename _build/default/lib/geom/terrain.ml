type t = { width : float; height : float }

let create ~width ~height =
  if width <= 0. || height <= 0. then invalid_arg "Terrain.create: non-positive size";
  { width; height }

let contains t (p : Vec2.t) =
  p.x >= 0. && p.x <= t.width && p.y >= 0. && p.y <= t.height

let clamp t (p : Vec2.t) =
  Vec2.v (Float.max 0. (Float.min t.width p.x)) (Float.max 0. (Float.min t.height p.y))

let random_point t rng =
  Vec2.v (Sim.Rng.float rng t.width) (Sim.Rng.float rng t.height)

let diagonal t = sqrt ((t.width *. t.width) +. (t.height *. t.height))
let area t = t.width *. t.height
let pp fmt t = Format.fprintf fmt "%.0fm x %.0fm" t.width t.height
