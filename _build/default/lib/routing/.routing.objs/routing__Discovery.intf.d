lib/routing/discovery.mli: Sim
