open Sim

type t = {
  ttl_start : int;
  ttl_increment : int;
  ttl_threshold : int;
  net_diameter : int;
  node_traversal : Time.t;
  timeout_buffer : int;
  max_retries : int;
}

let default =
  {
    ttl_start = 1;
    ttl_increment = 2;
    ttl_threshold = 7;
    net_diameter = 35;
    node_traversal = Time.ms 40.;
    timeout_buffer = 2;
    max_retries = 2;
  }

let next_ttl t ~prev =
  match prev with
  | None -> Some t.ttl_start
  | Some p ->
      if p >= t.net_diameter then None
      else if p >= t.ttl_threshold then Some t.net_diameter
      else
        let next = p + t.ttl_increment in
        if next > t.ttl_threshold then Some t.net_diameter else Some next
(* RFC 3561 §6.4: the ring grows by TTL_INCREMENT while it stays within
   TTL_THRESHOLD; the attempt after that goes straight to NET_DIAMETER.
   Clamping an overshooting ring *at* the threshold would insert an
   extra flood the schedule doesn't call for (visible whenever the
   first TTL is unaligned, e.g. LDR's optimal-TTL starts).
   Full-diameter retries are counted by the caller against
   [max_retries]; [next_ttl] only shapes the ring growth. *)

let attempt_timeout t ~ttl =
  Time.mul t.node_traversal (2 * (ttl + t.timeout_buffer))

let ttl_for_known_distance t ~dist =
  Stdlib.min t.net_diameter (Stdlib.max t.ttl_start dist + 2)
