(* Tests for the mobility models. *)

open Sim

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-6)

let terrain = Geom.Terrain.create ~width:1000. ~height:500.

let static_never_moves () =
  let p = Geom.Vec2.v 10. 20. in
  let m = Mobility.static p in
  List.iter
    (fun t -> checkb "same spot" true (Geom.Vec2.equal p (Mobility.position m (Time.sec t))))
    [ 0.; 1.; 100.; 10_000. ]

let waypoint_stays_in_terrain () =
  let rng = Rng.create 42 in
  for _ = 1 to 10 do
    let start = Geom.Terrain.random_point terrain rng in
    let m =
      Mobility.waypoint ~terrain ~rng:(Rng.split rng) ~speed_min:1.
        ~speed_max:20. ~pause:(Time.sec 5.) ~start
    in
    for t = 0 to 500 do
      let p = Mobility.position m (Time.sec (float_of_int t)) in
      checkb "inside terrain" true (Geom.Terrain.contains terrain p)
    done
  done

let waypoint_respects_speed () =
  let rng = Rng.create 7 in
  let start = Geom.Vec2.v 500. 250. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:20.
      ~pause:(Time.sec 0.001) ~start
  in
  (* Displacement over any dt cannot exceed max speed x dt. *)
  let prev = ref (Mobility.position m Time.zero) in
  let dt = 0.5 in
  for i = 1 to 2000 do
    let p = Mobility.position m (Time.sec (dt *. float_of_int i)) in
    let moved = Geom.Vec2.dist !prev p in
    checkb "bounded speed" true (moved <= (20. *. dt) +. 1e-6);
    prev := p
  done

let waypoint_pauses () =
  let rng = Rng.create 9 in
  let start = Geom.Vec2.v 100. 100. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:5. ~speed_max:5.
      ~pause:(Time.sec 10.) ~start
  in
  (* During the initial pause the node sits still. *)
  let p0 = Mobility.position m Time.zero in
  let p5 = Mobility.position m (Time.sec 5.) in
  let p9 = Mobility.position m (Time.sec 9.9) in
  checkb "paused at 5s" true (Geom.Vec2.equal p0 p5);
  checkb "paused at 9.9s" true (Geom.Vec2.equal p0 p9)

let waypoint_eventually_moves () =
  let rng = Rng.create 10 in
  let start = Geom.Vec2.v 100. 100. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:5. ~speed_max:10.
      ~pause:(Time.sec 1.) ~start
  in
  let p = Mobility.position m (Time.sec 60.) in
  checkb "moved by 60s" false (Geom.Vec2.equal p start)

(* Re-query tolerance (see the .mli): same-leg re-queries are exact,
   queries within the 1 ms backtrack slack before the current leg clamp
   to its start, and anything older still raises. *)
let monotonicity_enforced () =
  let rng = Rng.create 11 in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:2.
      ~pause:(Time.sec 1.) ~start:(Geom.Vec2.v 0. 0.)
  in
  (* Advance well into a motion leg (pause ends at 1s, legs are tens of
     seconds at 1-2 m/s), then re-query earlier inside the same leg. *)
  let p10 = Mobility.position m (Time.sec 10.) in
  let p5 = Mobility.position m (Time.sec 5.) in
  let p10' = Mobility.position m (Time.sec 10.) in
  checkb "same-leg re-query exact" true (Geom.Vec2.equal p10 p10');
  checkb "re-query differs mid-leg" false (Geom.Vec2.equal p5 p10);
  (* Forward progress still works after a backwards excursion. *)
  ignore (Mobility.position m (Time.sec 12.));
  Alcotest.check_raises "query older than the tolerance"
    (Invalid_argument
       "Mobility.position: query precedes the current leg by more than the \
        backtrack tolerance")
    (fun () -> ignore (Mobility.position m (Time.sec 0.5)))

let random_walk_in_terrain () =
  let rng = Rng.create 13 in
  let m =
    Mobility.random_walk ~terrain ~rng ~speed:10. ~epoch:(Time.sec 2.)
      ~start:(Geom.Vec2.v 999. 499.)
  in
  for t = 0 to 300 do
    let p = Mobility.position m (Time.sec (float_of_int t)) in
    checkb "inside" true (Geom.Terrain.contains terrain p)
  done

let scripted_follows_waypoints () =
  let m =
    Mobility.scripted
      [
        (Time.sec 0., Geom.Vec2.v 0. 0.);
        (Time.sec 10., Geom.Vec2.v 100. 0.);
        (Time.sec 20., Geom.Vec2.v 100. 100.);
      ]
  in
  let p = Mobility.position m (Time.sec 5.) in
  checkf "halfway x" 50. p.Geom.Vec2.x;
  checkf "halfway y" 0. p.Geom.Vec2.y;
  let q = Mobility.position m (Time.sec 15.) in
  checkf "second leg x" 100. q.Geom.Vec2.x;
  checkf "second leg y" 50. q.Geom.Vec2.y;
  let r = Mobility.position m (Time.sec 100.) in
  checkb "constant after last" true (Geom.Vec2.equal r (Geom.Vec2.v 100. 100.))

let scripted_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Mobility.scripted: empty trajectory")
    (fun () -> ignore (Mobility.scripted []));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Mobility.scripted: times must increase") (fun () ->
      ignore
        (Mobility.scripted
           [ (Time.sec 5., Geom.Vec2.zero); (Time.sec 5., Geom.Vec2.zero) ]))

let waypoint_validation () =
  Alcotest.check_raises "bad speeds"
    (Invalid_argument "Mobility.waypoint: need 0 < speed_min <= speed_max")
    (fun () ->
      ignore
        (Mobility.waypoint ~terrain ~rng:(Rng.create 1) ~speed_min:0.
           ~speed_max:5. ~pause:Time.zero ~start:Geom.Vec2.zero))

(* ---- Manhattan-grid mobility ------------------------------------------ *)

let on_lattice ~spacing p =
  let near v = Float.rem v spacing < 1e-6 || spacing -. Float.rem v spacing < 1e-6 in
  near p.Geom.Vec2.x || near p.Geom.Vec2.y

let manhattan_on_streets () =
  let spacing = 100. in
  let rng = Rng.create 21 in
  let m =
    Mobility.manhattan ~terrain ~rng ~spacing ~speed_min:5. ~speed_max:15.
      ~pause:Time.zero ~start:(Geom.Vec2.v 333. 212.)
  in
  (* Every position lies on a street: one coordinate is (nearly) a
     multiple of the spacing. *)
  for t = 0 to 400 do
    let p = Mobility.position m (Time.sec (float_of_int t)) in
    checkb "inside terrain" true (Geom.Terrain.contains terrain p);
    checkb "on a street" true (on_lattice ~spacing p)
  done

let manhattan_speed_bound () =
  let rng = Rng.create 22 in
  let m =
    Mobility.manhattan ~terrain ~rng ~spacing:50. ~speed_min:1. ~speed_max:10.
      ~pause:Time.zero ~start:(Geom.Vec2.v 500. 250.)
  in
  let prev = ref (Mobility.position m Time.zero) in
  let dt = 0.5 in
  for i = 1 to 1000 do
    let p = Mobility.position m (Time.sec (dt *. float_of_int i)) in
    checkb "bounded speed" true (Geom.Vec2.dist !prev p <= (10. *. dt) +. 1e-6);
    prev := p
  done

let manhattan_moves () =
  let rng = Rng.create 23 in
  let start = Geom.Vec2.v 200. 200. in
  let m =
    Mobility.manhattan ~terrain ~rng ~spacing:100. ~speed_min:5. ~speed_max:5.
      ~pause:Time.zero ~start
  in
  checkb "moved by 60s" false
    (Geom.Vec2.equal (Mobility.position m (Time.sec 60.)) start)

(* ---- RPGM group mobility ----------------------------------------------- *)

let rpgm_members_cohere () =
  let rng = Rng.create 31 in
  let radius = 40. in
  let g =
    Mobility.rpgm_group ~terrain ~rng:(Rng.split rng) ~speed_min:2.
      ~speed_max:10. ~pause:(Time.sec 1.) ~start:(Geom.Vec2.v 500. 250.)
  in
  let members =
    List.map
      (fun (ox, oy) -> Mobility.rpgm_member g ~ox ~oy)
      [ (0., 0.); (radius, 0.); (0., -.radius); (-20., 30.) ]
  in
  (* Members stay within the offset radius of each other (the group
     centre is shared), up to terrain clamping, and inside the arena. *)
  for t = 0 to 200 do
    let time = Time.sec (float_of_int t) in
    let ps = List.map (fun m -> Mobility.position m time) members in
    List.iter
      (fun p -> checkb "member inside terrain" true (Geom.Terrain.contains terrain p))
      ps;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            checkb "group coheres" true (Geom.Vec2.dist a b <= (2. *. radius) +. 1e-6))
          ps)
      ps
  done

let rpgm_out_of_order_members () =
  (* Two members of one group queried at different times (the PDES
     access pattern): the shared centre's legs are memoized, so neither
     query perturbs the other. *)
  let rng = Rng.create 32 in
  let g =
    Mobility.rpgm_group ~terrain ~rng ~speed_min:5. ~speed_max:10.
      ~pause:Time.zero ~start:(Geom.Vec2.v 100. 100.)
  in
  let a = Mobility.rpgm_member g ~ox:10. ~oy:0. in
  let b = Mobility.rpgm_member g ~ox:10. ~oy:0. in
  (* advance [a] far ahead, then query [b] from the start *)
  let pa60 = Mobility.position a (Time.sec 60.) in
  let pb10 = Mobility.position b (Time.sec 10.) in
  let pb60 = Mobility.position b (Time.sec 60.) in
  checkb "same offset, same position at 60s" true (Geom.Vec2.equal pa60 pb60);
  checkb "b's early query answered" true (Geom.Terrain.contains terrain pb10)

(* qcheck: waypoint containment for arbitrary seeds and query sequences. *)
let waypoint_contained_prop =
  QCheck.Test.make ~name:"waypoint always inside terrain" ~count:50
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 100) (float_bound_inclusive 10.)))
    (fun (seed, dts) ->
      let rng = Rng.create seed in
      let m =
        Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:20.
          ~pause:(Time.sec 2.) ~start:(Geom.Terrain.random_point terrain rng)
      in
      let t = ref Time.zero in
      List.for_all
        (fun dt ->
          t := Time.add !t (Time.sec dt);
          Geom.Terrain.contains terrain (Mobility.position m !t))
        dts)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mobility"
    [
      ( "models",
        [
          Alcotest.test_case "static" `Quick static_never_moves;
          Alcotest.test_case "waypoint stays inside" `Quick waypoint_stays_in_terrain;
          Alcotest.test_case "waypoint speed bound" `Quick waypoint_respects_speed;
          Alcotest.test_case "waypoint pauses" `Quick waypoint_pauses;
          Alcotest.test_case "waypoint moves" `Quick waypoint_eventually_moves;
          Alcotest.test_case "monotone queries" `Quick monotonicity_enforced;
          Alcotest.test_case "random walk inside" `Quick random_walk_in_terrain;
          Alcotest.test_case "scripted" `Quick scripted_follows_waypoints;
          Alcotest.test_case "scripted validation" `Quick scripted_validation;
          Alcotest.test_case "waypoint validation" `Quick waypoint_validation;
          qt waypoint_contained_prop;
        ] );
      ( "manhattan",
        [
          Alcotest.test_case "stays on streets" `Quick manhattan_on_streets;
          Alcotest.test_case "speed bound" `Quick manhattan_speed_bound;
          Alcotest.test_case "moves" `Quick manhattan_moves;
        ] );
      ( "rpgm",
        [
          Alcotest.test_case "group coheres" `Quick rpgm_members_cohere;
          Alcotest.test_case "out-of-order members" `Quick rpgm_out_of_order_members;
        ] );
    ]
