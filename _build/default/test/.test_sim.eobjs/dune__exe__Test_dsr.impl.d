test/test_dsr.ml: Alcotest Dsr Engine Experiment Fun List Net Node_id Packets QCheck QCheck_alcotest Rng Routing Sim Time
