(** Idealized protocol-level network for tests and walkthroughs.

    Agents are wired over an explicit, mutable adjacency: no MAC, no
    collisions, just deterministic per-link delays.  Broadcast reaches the
    current neighbors (in id order, at slightly staggered times, so reply
    ordering is deterministic); unicast to a disconnected node triggers
    the agent's [link_failure] callback after a short delay, imitating
    MAC retry exhaustion.  This isolates protocol logic from radio
    effects — the full stack is exercised by {!Runner}. *)


type t

val create :
  ?obs:Obs.Bus.t ->
  engine:Sim.Engine.t -> factory:Routing.Agent.factory -> n:int -> unit -> t
(** [obs] is shared by every node's ctx (so one monitor sees all
    table writes); omitted, each node gets a private disabled bus.
    Under a [`Controlled] engine the transport switches to floating
    events: every in-flight message (and every link-failure
    notification) becomes an explorer-orderable event tagged with the
    receiving node — no fixed per-hop delays. *)

val create_custom :
  ?obs:Obs.Bus.t ->
  engine:Sim.Engine.t ->
  factories:(Routing.Agent.ctx -> Routing.Agent.t) array ->
  unit ->
  t
(** Per-node factories (e.g. to keep debug handles on some nodes). *)

val agent : t -> int -> Routing.Agent.t
val connect : t -> int -> int -> unit
val disconnect : t -> int -> int -> unit
val connected : t -> int -> int -> bool
val connect_chain : t -> int list -> unit
val metrics : t -> Metrics.t

val origin : t -> src:int -> dst:int -> unit
(** Originate one data packet at [src] for [dst] (counted in metrics). *)

val delivered : t -> int
val run : t -> for_:Sim.Time.t -> unit
(** Advance the engine by the given amount of virtual time. *)

val audit_loops : t -> unit
(** Walk every successor chain; any cycle increments the metric's
    loop-violation counter. *)

val find_cycle : t -> (int * int list) option
(** First successor-graph cycle as [(destination, cycle nodes in walk
    order)], [None] when every chain is acyclic.  Unlike {!audit_loops}
    this returns the witness instead of counting — the mcheck explorer
    calls it after every fired event and puts the cycle in the
    violation trace. *)
