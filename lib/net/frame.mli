(** MAC-layer frames. *)

open Packets

type dst = Unicast of Node_id.t | Broadcast

type body = Payload of Payload.t | Ack

type t = { src : Node_id.t; dst : dst; body : body }

val addressed_to : t -> Node_id.t -> bool
val is_ack : t -> bool

val class_name : t -> string
(** "ACK", "DATA" or the control kind — the trace label. *)

val family : t -> int
(** The wire family selecting the payload parser
    ({!Wire.Payload.family}; 0 for ACKs). *)

val encoded_length : t -> int
(** Total on-air bytes: the 14-byte 802.11 ACK, or the 30-byte 4-address
    MAC header + payload encoding + 4-byte FCS.  Airtime, traced bytes
    and metrics all derive from this. *)

val encode : t -> bytes
(** The frame exactly as transmitted, CRC-32 FCS included;
    [Bytes.length (encode t) = encoded_length t]. *)

val decode :
  family:int -> ack_src:Node_id.t -> bytes -> (t, Wire.error) result
(** Total inverse of {!encode}.  [family] selects the payload parser (it
    travels out of band, e.g. in the pcap pseudo-header); [ack_src]
    supplies the transmitter for ACK frames, which — like real 802.11
    ACKs — carry only the receiver address.  Any truncation or bit flip
    fails the FCS and returns [Error _]; decoding never raises. *)

val dst_equal : dst -> dst -> bool
val pp_dst : Format.formatter -> dst -> unit
val pp : Format.formatter -> t -> unit
