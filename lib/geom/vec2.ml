type t = { x : float; y : float }

let v x y = { x; y }
let zero = { x = 0.; y = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let norm a = sqrt (dot a a)

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

(* Same arithmetic as [add a (scale u (sub b a))] term by term (float
   multiplication commutes bit-exactly), without the two intermediate
   records — this sits on the mobility fast path. *)
let lerp a b u =
  { x = a.x +. ((b.x -. a.x) *. u); y = a.y +. ((b.y -. a.y) *. u) }

let normalize a =
  let n = norm a in
  if n = 0. then zero else scale (1. /. n) a

let equal a b = a.x = b.x && a.y = b.y
let pp fmt a = Format.fprintf fmt "(%.1f, %.1f)" a.x a.y
