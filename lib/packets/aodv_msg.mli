(** AODV control messages (draft-10 era, as used in the paper's
    comparison). *)

type rreq = {
  dst : Node_id.t;
  dst_sn : int option;  (** [None] = unknown-sequence-number flag *)
  rreq_id : int;
  origin : Node_id.t;
  origin_sn : int;
  hop_count : int;
  ttl : int;
}

type rrep = {
  dst : Node_id.t;
  dst_sn : int;
  origin : Node_id.t;  (** node the reply travels to *)
  hop_count : int;
  lifetime : Sim.Time.t;
}

type rerr = { unreachable : (Node_id.t * int) list }

type t = Rreq of rreq | Rrep of rrep | Rerr of rerr | Rreq_agg of rreq list
(** [Rreq_agg]: aggregation-extension piggyback block; see
    {!Ldr_msg.t}. *)

val kind : t -> string
(** An aggregate counts as a single "RREQ" transmission. *)

val pp : Format.formatter -> t -> unit
