(** Incremental uniform-cell membership index over a fixed arena.

    The counting-sorted {!Grid} snapshots a whole batch and is rebuilt
    wholesale when positions drift; this sibling maintains cell
    membership {e incrementally}: {!update} moves a member between cells
    only when its containing cell actually changed, so a refresh sweep
    over [n] members costs O(changed cells), not O(n) rebuild work.

    Members are small integer ids (node indices).  No coordinates are
    stored: {!iter_disk} visits every member of the cells overlapping the
    query disk's bounding box — a superset of the true disk population —
    and the owner filters against live positions.  [Net.Channel]'s
    candidate handling is superset-invariant (exact distance filter, then
    deterministic ordering), so swapping this index in yields
    byte-identical outcomes. *)

type t

val create : cell:float -> width:float -> height:float -> ids:int -> t
(** [create ~cell ~width ~height ~ids] covers the arena
    [\[0,width\] x \[0,height\]] with square cells of side [cell] and
    accepts member ids in [\[0, ids)].  Positions slightly outside the
    arena clamp to the border cells. *)

val update : t -> int -> x:float -> y:float -> unit
(** [update t i ~x ~y] inserts member [i] at (x, y), or moves it if its
    containing cell changed.  O(1); free when the cell is unchanged. *)

val remove : t -> int -> unit
(** Remove member [i] (no-op when absent) — churn leave/crash. *)

val mem : t -> int -> bool
val population : t -> int
val cell_size : t -> float

val iter_disk : t -> x:float -> y:float -> radius:float -> (int -> unit) -> unit
(** Visit every member of the cells overlapping the closed disk's
    bounding box — a superset of the members within [radius].  The caller
    filters by live distance.  Visit order is unspecified. *)

type stats = { cells : int; occupied : int; max_occupancy : int }

val stats : t -> stats
(** Arena cell count, occupied cells and largest per-cell population —
    surfaced through [Obs.Telemetry]. *)
