(* Quickstart: a 9-node static chain-of-grids network running LDR.
   One node sends CBR traffic to the far corner; we watch the route
   discovery happen and print the resulting metrics.

   Run with: dune exec examples/quickstart.exe *)

open Experiment

let () =
  let scenario =
    {
      Scenario.label = "quickstart";
      num_nodes = 9;
      (* An explicit 3x3 grid on 400x400m: adjacent grid neighbors are
         ~133m apart, inside the 275m radio range. *)
      terrain = Geom.Terrain.create ~width:400. ~height:400.;
      placement = Scenario.Grid;
      speed_min = 0.;
      speed_max = 0.;
      (* static *)
      pause = Sim.Time.sec 0.;
      duration = Sim.Time.sec 30.;
      traffic =
        {
          Traffic.num_flows = 2;
          packets_per_sec = 4.;
          payload_bytes = 512;
          mean_flow_duration = Sim.Time.sec 30.;
          startup_window = Sim.Time.sec 1.;
        };
      protocol = Scenario.ldr;
      net = Net.Params.default;
      seed = 7;
      audit_loops = true;
      naive_channel = false;
      heap_scheduler = false;
      shards = 1;
      mobility = Scenario.Waypoint;
      shadowing = None;
      churn = None;
      partition = None;
      soa = false;
    }
  in
  let outcome = Runner.run scenario in
  let m = outcome.metrics in
  Format.printf "LDR quickstart (9 static nodes, 2 CBR flows, 30 s)@.";
  Format.printf "  originated        %d@." (Metrics.originated m);
  Format.printf "  delivered         %d@." (Metrics.delivered m);
  Format.printf "  delivery ratio    %.3f@." (Metrics.delivery_ratio m);
  Format.printf "  mean latency      %.2f ms@." (Metrics.mean_latency_ms m);
  Format.printf "  control packets   %d (hop-wise)@."
    (Metrics.control_transmissions m);
  List.iter
    (fun (kind, count) -> Format.printf "    %-5s %d@." kind count)
    (Metrics.control_by_kind m);
  Format.printf "  loop violations   %d@." (Metrics.loop_violations m);
  Format.printf "  events processed  %d@." outcome.events_processed;
  if Metrics.delivery_ratio m < 0.95 then begin
    Format.printf "UNEXPECTED: low delivery in a static connected network@.";
    exit 1
  end;
  Format.printf "OK@."
