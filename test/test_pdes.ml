(* Spatially-sharded PDES (Sim.Pdes + Runner's sharded path).

   The determinism contract (docs/PARALLELISM.md) is tested
   differentially, never with tolerances:

   - conformance: a run whose radios never interact across region
     borders produces outcomes exactly equal ([Stdlib.compare]) at
     shards = 1, 2, 3 and 4 — summary, latency quantiles, per-kind
     control counts, event counts, MAC counters, audit results;
   - border traffic: runs that do cross borders are exactly
     reproducible at a fixed shard count (and independent of the
     worker-domain count), with the crossing latency as the one
     documented relaxation against shards = 1;
   - the invariant monitor works under sharding: silent on clean runs,
     and a fault injected at the same virtual time trips it with an
     outcome exactly equal to the classic run's.

   [MANET_TEST_SHARDS] sets the sharded worker-domain count exercised
   by the worker-independence test (default 4; CI pins it to 4). *)

open Sim
open Experiment

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_shards =
  match Sys.getenv_opt "MANET_TEST_SHARDS" with
  | Some s -> ( match int_of_string_opt s with Some k when k >= 2 -> k | _ -> 4)
  | None -> 4

(* Two 9-node clusters, 1400 m apart on a 2400 m terrain: every node is
   more than a carrier-sense range (550 m) from the other cluster and
   from any region border a split into 2, 3 or 4 vertical stripes
   produces, so no transmission ever crosses shards. *)
let cluster x0 =
  List.concat_map
    (fun dx -> List.map (fun y -> Geom.Vec2.v (x0 +. dx) y) [ 60.; 150.; 240. ])
    [ 0.; 150.; 300. ]

let border_free ?(protocol = Scenario.ldr) ?(audit = false) ?(seed = 11)
    ?(shards = 1) () =
  let positions = cluster 150. @ cluster 1950. in
  {
    Scenario.label = "pdes-border-free";
    num_nodes = List.length positions;
    terrain = Geom.Terrain.create ~width:2400. ~height:300.;
    placement = Scenario.Fixed positions;
    speed_min = 0.;
    speed_max = 0.;
    pause = Time.sec 0.;
    duration = Time.sec 10.;
    traffic =
      {
        Traffic.num_flows = 3;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec 8.;
        startup_window = Time.sec 2.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = audit;
    naive_channel = false;
    heap_scheduler = false;
    shards;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

(* A connected grid spanning the whole terrain: routes and carrier
   sense cross every region border. *)
let bordered ?(speed_max = 0.) ?(seed = 3) ?(shards = 1) () =
  {
    (border_free ~seed ~shards ()) with
    Scenario.label = "pdes-bordered";
    num_nodes = 24;
    terrain = Geom.Terrain.create ~width:1200. ~height:300.;
    placement = (if speed_max > 0. then Scenario.Uniform else Scenario.Grid);
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
  }

let digest (o : Runner.outcome) =
  let m = o.Runner.metrics in
  ( ( o.Runner.summary,
      o.Runner.events_processed,
      o.Runner.transmissions,
      o.Runner.mac_queue_drops,
      o.Runner.mac_unicast_failures,
      o.Runner.invariant_violations ),
    ( Metrics.originated m,
      Metrics.delivered m,
      Metrics.duplicates m,
      Metrics.median_latency_ms m,
      Metrics.p95_latency_ms m,
      Metrics.mean_hops m ),
    ( Metrics.control_by_kind m,
      Metrics.control_bytes_by_kind m,
      Metrics.drops_by_reason m,
      Metrics.loop_violations m,
      Metrics.data_bytes m,
      Metrics.ack_bytes m ) )

let same_digest label a b =
  checkb label true (Stdlib.compare (digest a) (digest b) = 0)

(* --- border-free conformance: shards is unobservable ---------------- *)

let test_conformance protocol () =
  let base = Runner.run (border_free ~protocol ()) in
  List.iter
    (fun k ->
      let o = Runner.run (border_free ~protocol ~shards:k ()) in
      checki (Printf.sprintf "no cross-shard frames at K=%d" k) 0
        o.Runner.pdes_messages;
      checkb (Printf.sprintf "windows ran at K=%d" k) true
        (o.Runner.pdes_windows > 0);
      same_digest (Printf.sprintf "digest K=1 vs K=%d" k) base o)
    [ 2; 3; 4 ]

let test_conformance_audit () =
  let base = Runner.run (border_free ~audit:true ()) in
  let o = Runner.run (border_free ~audit:true ~shards:4 ()) in
  checki "clean audit under sharding" 0 (Metrics.loop_violations o.Runner.metrics);
  same_digest "audited digest K=1 vs K=4" base o

let test_conformance_monitor () =
  let base = Runner.run ~monitor:true (border_free ()) in
  let o = Runner.run ~monitor:true (border_free ~shards:4 ()) in
  checki "monitor silent on clean sharded run" 0 o.Runner.invariant_violations;
  same_digest "monitored digest K=1 vs K=4" base o

(* --- bordered runs: reproducible, worker-count independent --------- *)

let test_border_crossing () =
  let o1 = Runner.run (bordered ~shards:4 ()) in
  let o2 = Runner.run (bordered ~shards:4 ()) in
  checkb "traffic crossed borders" true (o1.Runner.pdes_messages > 0);
  checkb "packets delivered" true (Metrics.delivered o1.Runner.metrics > 0);
  same_digest "same-K re-run identical" o1 o2

let test_worker_independence () =
  let o1 = Runner.run ~pdes_workers:1 (bordered ~shards:4 ()) in
  let on = Runner.run ~pdes_workers:test_shards (bordered ~shards:4 ()) in
  same_digest
    (Printf.sprintf "workers=1 vs workers=%d" test_shards)
    o1 on

let test_mobile_reproducible () =
  (* Mobility exercises the occupancy-band refresh boundaries. *)
  let sc = bordered ~speed_max:10. ~shards:3 () in
  let o1 = Runner.run sc in
  let o2 = Runner.run sc in
  checkb "mobile run delivered" true (Metrics.delivered o1.Runner.metrics > 0);
  same_digest "mobile same-K re-run identical" o1 o2

(* --- fault injection under sharding -------------------------------- *)

let test_fault_under_sharding () =
  let at = Time.sec 5. in
  let classic_injected = ref (ref false) in
  let sharded_injected = ref (ref false) in
  let base =
    Runner.run ~monitor:true
      ~prepare:(fun sim ->
        classic_injected := (Fault.stale_seqno sim ~at).Fault.injected)
      (border_free ())
  in
  let o =
    Runner.run ~monitor:true
      ~prepare_pdes:(fun p ->
        sharded_injected := (Fault.stale_seqno_sharded p ~at).Fault.injected)
      (border_free ~shards:4 ())
  in
  checkb "classic fault injected" true !(!classic_injected);
  checkb "sharded fault injected" true !(!sharded_injected);
  checkb "classic monitor tripped" true (base.Runner.invariant_violations >= 1);
  checki "same violation count" base.Runner.invariant_violations
    o.Runner.invariant_violations;
  (* Full-outcome equality pins the fault to the same site and time:
     any divergence in the victim scan or the delivery instant would
     cascade into the metrics. *)
  same_digest "faulted digest K=1 vs K=4" base o

(* --- Pdes unit behaviour ------------------------------------------- *)

let test_lookahead_bound () =
  let mk () = Array.init 2 (fun _ -> Engine.create ~seed:1 ()) in
  (* A post one full lookahead ahead lands exactly on the next window
     boundary and is delivered there. *)
  let engines = mk () in
  let p = Pdes.create ~lookahead:(Time.sec 0.001) engines in
  let hit = ref Time.zero in
  ignore
    (Engine.at engines.(0) (Time.sec 0.0015) (fun () ->
         Pdes.post p ~src:0 ~dst:1
           (Time.add (Engine.now engines.(0)) (Time.sec 0.001))
           (fun () -> hit := Engine.now engines.(1))));
  Pdes.run p ~until:(Time.sec 0.01);
  checki "delivered at source time + lookahead" 2_500_000 ((!hit :> int));
  checki "one cross-shard message" 1 (Pdes.stats p).Pdes.messages;
  checkb "windows advanced" true ((Pdes.stats p).Pdes.windows > 0);
  (* A post inside the current window violates the conservative bound
     and must be rejected, not silently reordered. *)
  let engines = mk () in
  let p = Pdes.create ~lookahead:(Time.sec 0.001) engines in
  ignore
    (Engine.at engines.(0) (Time.sec 0.0015) (fun () ->
         Pdes.post p ~src:0 ~dst:1 (Engine.now engines.(0)) (fun () -> ())));
  checkb "past-window post rejected" true
    (try
       Pdes.run p ~until:(Time.sec 0.01);
       false
     with Invalid_argument _ -> true)

let test_partition () =
  let t =
    Geom.Partition.stripes
      ~terrain:(Geom.Terrain.create ~width:100. ~height:50.)
      ~k:4
  in
  let r x = Geom.Partition.region_of t (Geom.Vec2.v x 25.) in
  checki "left edge" 0 (r 0.);
  checki "last point below split" 0 (r 24.9);
  checki "split belongs right" 1 (r 25.);
  checki "right interior" 3 (r 99.9);
  checki "right edge clamps" 3 (r 100.);
  checki "beyond clamps" 3 (r 250.);
  let one =
    Geom.Partition.stripes
      ~terrain:(Geom.Terrain.create ~width:100. ~height:50.)
      ~k:1
  in
  checki "k=1 is one region" 0 (Geom.Partition.region_of one (Geom.Vec2.v 99. 0.))

let () =
  Alcotest.run "pdes"
    [
      ( "conformance",
        [
          Alcotest.test_case "ldr K in {1,2,3,4}" `Quick
            (test_conformance Scenario.ldr);
          Alcotest.test_case "aodv K in {1,2,3,4}" `Quick
            (test_conformance Scenario.aodv);
          Alcotest.test_case "olsr K in {1,2,3,4}" `Quick
            (test_conformance Scenario.olsr);
          Alcotest.test_case "loop audit" `Quick test_conformance_audit;
          Alcotest.test_case "monitor silent" `Quick test_conformance_monitor;
        ] );
      ( "borders",
        [
          Alcotest.test_case "crossing traffic reproducible" `Quick
            test_border_crossing;
          Alcotest.test_case "worker-count independent" `Quick
            test_worker_independence;
          Alcotest.test_case "mobile band refresh reproducible" `Quick
            test_mobile_reproducible;
        ] );
      ( "fault",
        [ Alcotest.test_case "monitor trips under sharding" `Quick
            test_fault_under_sharding ] );
      ( "pdes-core",
        [
          Alcotest.test_case "lookahead bound" `Quick test_lookahead_bound;
          Alcotest.test_case "partition stripes" `Quick test_partition;
        ] );
    ]
