lib/net/frame.ml: Format Node_id Packets Payload
