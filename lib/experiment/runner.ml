open Sim
open Packets

type outcome = {
  metrics : Metrics.t;
  summary : Metrics.summary;
  events_processed : int;
  mac_queue_drops : int;
  mac_unicast_failures : int;
  transmissions : int;
  invariant_violations : int;
}

type sim = {
  engine : Engine.t;
  agents : Routing.Agent.t array;
  macs : Net.Mac.t array;
  channel : Net.Channel.t;
  bus : Obs.Bus.t;
  inject : src:int -> dst:int -> unit;
  sim_metrics : Metrics.t;
  finalize : unit -> unit;
  mutable monitor : Obs.Monitor.t option;
  mutable cleanup : (unit -> unit) list;
}

(* Any loop created by a routing-table write must traverse the edge just
   written, so it suffices to walk successor chains starting at the node
   that changed (for every destination it currently has a successor
   for).  The visited set is a generation-stamped scratch array shared
   across every audit in the run — no per-walk allocation. *)
let audit_from ~scratch ~gen agents metrics n num_nodes =
  let agent : Routing.Agent.t = agents.(n) in
  for d = 0 to num_nodes - 1 do
    if d <> n then begin
      let dst = Node_id.of_int d in
      match agent.Routing.Agent.successor dst with
      | None -> ()
      | Some _ ->
          incr gen;
          let g = !gen in
          let rec walk x =
            let xi = Node_id.to_int x in
            if scratch.(xi) = g then Metrics.loop_violation metrics
            else begin
              scratch.(xi) <- g;
              if not (Node_id.equal x dst) then
                match agents.(xi).Routing.Agent.successor dst with
                | Some next -> walk next
                | None -> ()
            end
          in
          walk (Node_id.of_int n)
    end
  done

let build ?on_engine ?obs (sc : Scenario.t) =
  let engine =
    Engine.create ~seed:sc.seed
      ~scheduler:(if sc.heap_scheduler then `Heap else `Calendar)
      ()
  in
  (* Instrumentation hook (e.g. [Engine.record_trace] in the engine
     benchmark), called before anything is scheduled so setup-time
     events are captured too. *)
  (match on_engine with Some f -> f engine | None -> ());
  let bus = match obs with Some b -> b | None -> Obs.Bus.create () in
  (* The pretty trace sink renders through the process-global Logs
     reporter onto one shared formatter; concurrent worker trials
     attaching it would interleave lines and race the formatter's
     buffer.  Everything else a trial touches (engine, RNG, metrics,
     bus + intern table, audit scratch) is built per-sim below, so
     worker-domain trials simply skip this one global observer. *)
  if Trace.on () && not (Parallel.on_worker_domain ()) then
    Obs.Bus.add_sink bus (Trace.obs_sink bus);
  let root = Engine.rng engine in
  let placement_rng = Rng.split root in
  let mobility_rng = Rng.split root in
  let traffic_rng = Rng.split root in
  let metrics = Metrics.create () in
  let channel =
    Net.Channel.create ~engine
      ~mode:(if sc.naive_channel then Net.Channel.Naive else Net.Channel.Grid)
      ~max_speed:(Float.max sc.speed_max 0.)
      ~obs:bus ~params:sc.net ()
  in
  Net.Channel.add_transmit_hook channel (fun _src frame ->
      Metrics.transmitted metrics frame);
  let n = sc.num_nodes in
  let agents : Routing.Agent.t array =
    Array.make n
      {
        Routing.Agent.origin_data = ignore;
        recv = (fun _ ~from:_ -> ());
        overheard = (fun _ ~from:_ ~dst:_ -> ());
        link_failure = (fun _ ~next_hop:_ -> ());
        start = ignore;
        successor = (fun _ -> None);
        own_seqno = (fun () -> 0.);
        invariants = (fun _ -> None);
        route_stats = (fun () -> (0, 0, 0));
      }
  in
  let audit_scratch = Array.make n (-1) in
  let audit_gen = ref 0 in
  let factory = Scenario.factory sc.protocol in
  let macs = ref [] in
  let starts = Scenario.positions sc placement_rng in
  for i = 0 to n - 1 do
    let id = Node_id.of_int i in
    let start = starts.(i) in
    let mob =
      if sc.speed_max <= 0. then Mobility.static start
      else
        Mobility.waypoint ~terrain:sc.terrain ~rng:(Rng.split mobility_rng)
          ~speed_min:sc.speed_min ~speed_max:sc.speed_max ~pause:sc.pause
          ~start
    in
    let position () = Mobility.position mob (Engine.now engine) in
    let mac =
      Net.Mac.create ~engine ~channel ~rng:(Rng.split root) ~id ~position
        {
          Net.Mac.receive =
            (fun payload ~from ->
              agents.(i).Routing.Agent.recv payload ~from);
          promiscuous =
            (fun payload ~from ~dst ->
              agents.(i).Routing.Agent.overheard payload ~from ~dst);
          link_failure =
            (fun payload ~next_hop ->
              if Obs.Bus.on bus then
                Obs.Bus.link_failure bus ~time:(Engine.now engine) ~node:i
                  ~next_hop:(Node_id.to_int next_hop);
              agents.(i).Routing.Agent.link_failure payload ~next_hop);
        }
    in
    macs := mac :: !macs;
    let ctx =
      {
        Routing.Agent.id;
        engine;
        rng = Rng.split root;
        send = (fun ~dst payload -> Net.Mac.send mac ~dst payload);
        deliver =
          (fun msg ->
            let now = Engine.now engine in
            if Obs.Bus.on bus then
              Obs.Bus.deliver bus ~time:now ~node:i
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~hops:msg.Data_msg.hops
                ~latency_ns:
                  ((Time.diff now msg.Data_msg.origin_time :> int));
            Metrics.data_delivered metrics ~now msg);
        drop_data =
          (fun msg ~reason ->
            if Obs.Bus.on bus then
              Obs.Bus.data_drop bus ~time:(Engine.now engine) ~node:i
                ~reason:(Obs.Bus.intern bus reason)
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~dst:(Node_id.to_int msg.Data_msg.dst);
            Metrics.data_dropped metrics msg ~reason);
        event =
          (fun ?dst name ->
            if Obs.Bus.on bus then
              Obs.Bus.proto bus ~time:(Engine.now engine) ~node:i
                ~name:(Obs.Bus.intern bus name)
                ~dst:
                  (match dst with Some d -> Node_id.to_int d | None -> -1);
            Metrics.protocol_event metrics name);
        table_changed =
          (if sc.audit_loops then fun () ->
             audit_from ~scratch:audit_scratch ~gen:audit_gen agents metrics
               i n
           else ignore);
        obs = bus;
      }
    in
    agents.(i) <- factory ctx
  done;
  Array.iter (fun (a : Routing.Agent.t) -> a.start ()) agents;
  Traffic.setup ~engine ~rng:traffic_rng ~num_nodes:n ~config:sc.traffic
    ~until:sc.duration
    ~emit:(fun ~src msg ->
      Metrics.data_originated metrics msg;
      agents.(Node_id.to_int src).Routing.Agent.origin_data msg);
  let injected = ref 0 in
  let inject ~src ~dst =
    incr injected;
    let msg =
      Data_msg.fresh
        ~flow_id:(1_000_000 + !injected)
        ~seq:0 ~src:(Node_id.of_int src) ~dst:(Node_id.of_int dst)
        ~payload_bytes:sc.traffic.Traffic.payload_bytes
        ~origin_time:(Engine.now engine)
    in
    Metrics.data_originated metrics msg;
    agents.(src).Routing.Agent.origin_data msg
  in
  let finalize () =
    let total = ref 0. in
    Array.iter
      (fun (a : Routing.Agent.t) -> total := !total +. a.own_seqno ())
      agents;
    Metrics.set_mean_dest_seqno metrics (!total /. float_of_int n)
  in
  {
    engine;
    agents;
    macs = Array.of_list (List.rev !macs);
    channel;
    bus;
    inject;
    sim_metrics = metrics;
    finalize;
    monitor = None;
    cleanup = [];
  }

let attach_trace sim path =
  let oc = open_out path in
  Obs.Bus.add_sink sim.bus (Obs.Jsonl.sink sim.bus oc);
  sim.cleanup <- (fun () -> close_out oc) :: sim.cleanup

let attach_pcap sim path =
  let sink = Net.Pcap.open_sink path in
  Net.Channel.add_transmit_hook sim.channel (fun _src frame ->
      Net.Pcap.write sink ~time:(Engine.now sim.engine) frame);
  sim.cleanup <- (fun () -> Net.Pcap.close sink) :: sim.cleanup

let attach_monitor ?ring ?quiet sim =
  let lookup ~node ~dst =
    sim.agents.(node).Routing.Agent.invariants (Node_id.of_int dst)
  in
  let m = Obs.Monitor.create ?ring ?quiet ~lookup sim.bus in
  sim.monitor <- Some m;
  m

let attach_sampler sim ~every ~until path =
  let oc = open_out path in
  Sampler.attach ~engine:sim.engine ~metrics:sim.sim_metrics
    ~channel:sim.channel ~macs:sim.macs ~agents:sim.agents ~every ~until
    ~oc;
  sim.cleanup <- (fun () -> close_out oc) :: sim.cleanup

let finish sim =
  sim.finalize ();
  List.iter (fun f -> f ()) sim.cleanup;
  sim.cleanup <- []

let run ?on_engine ?obs ?monitor ?trace_out ?pcap_out ?sample ?sample_out
    ?prepare (sc : Scenario.t) =
  let sim = build ?on_engine ?obs sc in
  (* Let in-flight packets (and their latency) resolve briefly after the
     last origination. *)
  let drain = Time.sec 2. in
  let until = Time.add sc.duration drain in
  (* File sinks before the monitor, so a violation's ring dump and the
     trace file agree on what precedes the violation line. *)
  (match trace_out with Some path -> attach_trace sim path | None -> ());
  (match pcap_out with Some path -> attach_pcap sim path | None -> ());
  if monitor = Some true then ignore (attach_monitor sim);
  (match sample with
  | Some every ->
      let path = match sample_out with Some p -> p | None -> "samples.jsonl" in
      attach_sampler sim ~every ~until path
  | None -> ());
  (match prepare with Some f -> f sim | None -> ());
  Engine.run ~until sim.engine;
  finish sim;
  let metrics = sim.sim_metrics in
  let sum f = Array.fold_left (fun acc m -> acc + f m) 0 sim.macs in
  {
    metrics;
    summary = Metrics.summary metrics;
    events_processed = Engine.events_processed sim.engine;
    mac_queue_drops = sum Net.Mac.queue_drops;
    mac_unicast_failures = sum Net.Mac.unicast_failures;
    transmissions = Net.Channel.transmissions sim.channel;
    invariant_violations =
      (match sim.monitor with Some m -> Obs.Monitor.violations m | None -> 0);
  }
