lib/packets/ldr_msg.mli: Format Node_id Seqnum Sim
