open Packets

type ctx = {
  id : Node_id.t;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  send : dst:Net.Frame.dst -> Payload.t -> unit;
  deliver : Data_msg.t -> unit;
  drop_data : Data_msg.t -> reason:string -> unit;
  event : ?dst:Node_id.t -> string -> unit;
  table_changed : unit -> unit;
  obs : Obs.Bus.t;
}

type t = {
  origin_data : Data_msg.t -> unit;
  recv : Payload.t -> from:Node_id.t -> unit;
  overheard : Payload.t -> from:Node_id.t -> dst:Net.Frame.dst -> unit;
  link_failure : Payload.t -> next_hop:Node_id.t -> unit;
  start : unit -> unit;
  successor : Node_id.t -> Node_id.t option;
  own_seqno : unit -> float;
  invariants : Node_id.t -> Obs.Event.inv option;
  route_stats : unit -> int * int * int;
  reset : crash:bool -> unit;
}

type factory = ctx -> t

let null_ctx ?(id = 0) engine =
  {
    id = Node_id.of_int id;
    engine;
    rng = Sim.Rng.create 42;
    send = (fun ~dst:_ _ -> ());
    deliver = ignore;
    drop_data = (fun _ ~reason:_ -> ());
    event = (fun ?dst:_ _ -> ());
    table_changed = ignore;
    obs = Obs.Bus.create ();
  }
