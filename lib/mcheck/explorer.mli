(** Stateless systematic exploration of a {!Fixture} schedule space.

    The simulation runs on the engine's [`Controlled] scheduler: the
    fixture's script steps are timed events, every in-flight message is
    a floating event, and at each step the explorer picks which ready
    event fires.  There are no state snapshots — a state {e is} its
    decision prefix, re-reached by rebuilding the simulation and
    re-firing the prefix (deterministic: same prefix, same state, same
    event ids).

    Pruning, both sound for the safety properties checked here:
    - {e sleep sets} over the independence relation "two floating
      deliveries at distinct nodes commute" (timed events advance the
      shared clock and are dependent with everything);
    - {e state matching} on a digest of routing state + pending-event
      multiset, re-exploring a revisited state unless the stored visit
      had a subset sleep set at no greater depth.  The digest is a
      hash, so an astronomically-unlikely collision could hide a
      schedule; docs/MODEL_CHECKING.md spells the caveat out.

    Violations checked after every fired event: a successor-graph
    cycle ({!Experiment.Testnet.find_cycle} — the AODV detector) and
    the LDR invariant monitor's violation count. *)

type protocol = Aodv | Ldr

val protocol_of_string : string -> protocol option
val protocol_name : protocol -> string

type choice = {
  c_seq : int;  (** event id within its run — stable across replays *)
  c_tag : int;
  c_time : int;
  c_float : bool;
  c_label : string;
}
(** One decision: which ready event fired. *)

type vkind =
  | Cycle of int * int list  (** destination, successor cycle *)
  | Monitor of int  (** LDR monitor violation count *)

type violation = { v_kind : vkind; v_trace : choice list }

type stats = {
  mutable states : int;  (** distinct prefixes executed *)
  mutable transitions : int;  (** explored edges *)
  mutable sleep_skipped : int;  (** choices pruned by sleep sets *)
  mutable state_merged : int;  (** revisits pruned by state matching *)
  mutable depth_cut : int;  (** branches truncated by the step bound *)
  mutable terminals : int;  (** quiescent states reached *)
  mutable replays : int;  (** full prefix re-executions *)
  mutable replayed_events : int;
  mutable max_depth : int;
  mutable violations : int;  (** violating states found *)
  mutable complete : bool;
      (** the bounded space was fully explored (no state-budget bail) *)
}

type result = { stats : stats; violation : violation option }

val explore :
  ?max_steps:int ->
  ?max_states:int ->
  ?stop_at_first:bool ->
  ?dedup:bool ->
  Fixture.t ->
  protocol ->
  result
(** DFS over the bounded schedule space.  [max_steps] (default 40)
    bounds the decision depth, [max_states] (default 2_000_000) the
    explored prefixes — hitting it clears [stats.complete].
    [stop_at_first] (default true) aborts on the first violating
    state; the first violation found is returned either way.
    [dedup] (default true) enables state matching. *)

val random_walks :
  ?max_steps:int -> walks:int -> seed:int -> Fixture.t -> protocol -> result
(** Fallback for spaces too big to enumerate: [walks] uniformly random
    schedules (seeded, reproducible).  [stats.complete] is always
    false. *)

val minimize :
  ?max_steps:int -> Fixture.t -> protocol -> violation -> violation
(** Shortest-depth violation via iterative tightening: repeatedly
    re-explore with the bound one below the best-known violation depth
    until the space is silent.  Sleep sets preserve schedule length
    (Mazurkiewicz equivalence), so pruned re-exploration stays sound
    under the tightened bound. *)

val replay : Fixture.t -> protocol -> choice list -> vkind option
(** Re-execute a decision trace event-for-event; the violation state
    (if any) after the last step.  Raises [Failure] if a recorded
    choice names an event that does not exist at that point — replay
    divergence, i.e. a trace from different code or fixture. *)

val digest : Fixture.t -> protocol -> choice list -> int
(** State digest after replaying the prefix: routing tables, clock,
    monitor count, pending-event multiset.  The determinism regression
    asserts equal prefixes give equal digests. *)

(** Replayable violation trace files (JSONL, parsed with
    {!Obs.Jsonl.parse_line}): a header line naming fixture and
    protocol, one ["step"] line per decision, one trailing
    ["violation"] line. *)

val write_trace :
  path:string -> Fixture.t -> protocol -> violation -> unit

val read_trace :
  path:string -> (string * protocol * choice list * vkind, string) Stdlib.result
(** Returns (fixture name, protocol, decisions, recorded violation). *)

val render_vkind : vkind -> string
(** e.g. ["cycle dst=2 via 0->1->0"] — what the CI smoke greps for. *)

val debug_ready :
  Fixture.t -> protocol -> choice list -> Sim.Controlled_queue.ready list
(** Ready set after replaying a prefix — introspection for tests and
    tooling. *)
