(** Seeded protocol faults, for exercising the invariant monitor.

    Real LDR cannot violate its own ordering invariant (that is the
    paper's Theorem 1), so testing the monitor requires corrupting an
    agent from outside: these helpers schedule a malformed control
    message into an otherwise-healthy run. *)

type injection = {
  injected : bool ref;
      (** [true] once the fault has actually been delivered; stays
          [false] if no node had an active route at [at]. *)
  stamp : int;  (** The forged sequence-number stamp. *)
  mutable victim : int;
      (** The node that received the forged RREP (-1 until injected) —
          the monitor's violating table write happens here. *)
  mutable dst : int;
      (** Destination of the forged route (-1 until injected). *)
  mutable via : int;
      (** Successor the forged reply arrived from / advertises (-1
          until injected). *)
}
(** What was injected and where, so tests and mcheck can assert
    {e which} table write tripped the monitor rather than just that
    something did. *)

val stale_seqno : ?stamp:int -> Runner.sim -> at:Sim.Time.t -> injection
(** At virtual time [at], deliver a forged RREP to the first node that
    has an active route: it advertises that node's current successor
    with an absurdly new sequence number ([stamp], default 1e6).  The
    node installs it (NDC accepts newer numbers unconditionally), and
    the written edge's successor no longer dominates — the invariant
    monitor, if attached, fires at that exact table write.

    The returned record's [injected] ref becomes [true] — and its
    [victim]/[dst]/[via] fields are filled — once the fault has
    actually been injected.  Pass via {!Runner.run}'s [prepare]
    callback or call on a built {!Runner.sim} before running. *)

val stale_seqno_sharded :
  ?stamp:int -> Runner.psim -> at:Sim.Time.t -> injection
(** {!stale_seqno} for a sharded (PDES) run: the victim scan happens at
    the first window boundary at or after [at] — every shard quiesced,
    so the scan sees the same global state as the classic injector
    event — and the forged delivery runs as one event at [at] on the
    victim's home engine.  Pass via {!Runner.run}'s [prepare_pdes]. *)
