(** Arena partition for spatially-sharded (PDES) runs: K equal-width
    vertical stripes.  Region 0 owns [0, w/K), region K-1 owns the
    remainder up to the terrain width; points outside the terrain clamp
    to the nearest stripe. *)

type t

val stripes : terrain:Terrain.t -> k:int -> t
(** Raises [Invalid_argument] when [k < 1]. *)

val regions : t -> int
val region_of : t -> Vec2.t -> int
val x_lo : t -> int -> float
val x_hi : t -> int -> float
