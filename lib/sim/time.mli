(** Simulation time.

    Time is a count of nanoseconds since the start of the simulation,
    stored as an immediate [int] (63-bit: ±146 years of simulated time).
    Using integer nanoseconds keeps event ordering exact and runs
    bit-for-bit reproducible across platforms, which the
    deterministic-replay tests rely on; the immediate representation
    keeps clock arithmetic and event-queue comparisons allocation-free.
    The [ns]/[to_ns] boundary stays [int64] so callers are unaffected. *)

type t = private int

val zero : t

val ns : int64 -> t
(** [ns n] is [n] nanoseconds.  Raises [Invalid_argument] if [n < 0]. *)

val us : float -> t
(** [us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val ms : float -> t
(** [ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)

val sec : float -> t
(** [sec x] is [x] seconds, rounded to the nearest nanosecond. *)

val unsafe_of_ns : int -> t
(** [unsafe_of_ns n] reinterprets an int nanosecond count as a time with
    no range check.  For schedulers that store times unboxed and need to
    hand them back; everyone else should use {!ns}. *)

val to_ns : t -> int64
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b].  Raises [Invalid_argument] if [b] is after [a]. *)

val mul : t -> int -> t
val div : t -> int -> t

val scale : t -> float -> t
(** [scale t x] is [t] multiplied by the non-negative factor [x]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit, e.g. ["1.500ms"] or ["2.000s"]. *)

val to_string : t -> string
