(** CBR workload generator (paper, Section 4).

    The load consists of [num_flows] concurrent flow slots.  Each slot
    picks a random source/destination pair and a duration drawn from an
    exponential with mean [mean_flow_duration] (100 s in the paper), emits
    [packets_per_sec] fixed-size packets, then immediately restarts with a
    fresh random pair — keeping the number of concurrent flows constant,
    as the paper's "10-flow" / "30-flow" loads require. *)

open Packets

type config = {
  num_flows : int;
  packets_per_sec : float;
  payload_bytes : int;  (** 512 in the paper *)
  mean_flow_duration : Sim.Time.t;  (** exp-distributed flow length *)
  startup_window : Sim.Time.t;
      (** flow starts are staggered uniformly over this window *)
}

val default_config : config
(** 10 flows, 4 pps, 512 B, exp(100 s), 10 s startup window. *)

val setup :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  num_nodes:int ->
  config:config ->
  until:Sim.Time.t ->
  emit:(src:Node_id.t -> Data_msg.t -> unit) ->
  unit
(** Schedule the whole workload on [engine].  [emit] is called at each
    packet origination time with a fresh [Data_msg.t] (unique
    (flow_id, seq), origin time stamped). *)
