lib/net/ifq.ml: Queue
