(** CSMA/CA medium access (simplified 802.11 DCF).

    Mechanisms modelled: carrier sense with DIFS deferral, binary
    exponential backoff (frozen while the medium is busy), unicast
    ACK + retransmission with a retry limit, unacknowledged broadcast, a
    drop-tail interface queue.  Unicast retry exhaustion is reported as a
    link failure — the signal on-demand routing protocols use for route
    maintenance.

    Not modelled (see DESIGN.md): RTS/CTS and the NAV; EIFS; capture. *)

open Packets

type t

type callbacks = {
  receive : Payload.t -> from:Node_id.t -> unit;
      (** frames addressed to this node or broadcast *)
  promiscuous : Payload.t -> from:Node_id.t -> dst:Frame.dst -> unit;
      (** frames overheard but addressed elsewhere (DSR snooping) *)
  link_failure : Payload.t -> next_hop:Node_id.t -> unit;
      (** unicast gave up after the retry limit *)
}

val create :
  engine:Sim.Engine.t ->
  channel:Channel.t ->
  rng:Sim.Rng.t ->
  id:Node_id.t ->
  position:(unit -> Geom.Vec2.t) ->
  ?world:Nodes.t * int ->
  callbacks ->
  t
(** [world] is the shared SoA state and this node's slot: the MAC then
    writes its sent/failure/queue counters through the flat [Nodes]
    planes (and registers its radio under that store slot), instead of
    private record fields. *)

val send : t -> dst:Frame.dst -> Packets.Payload.t -> unit
(** Enqueue a frame.  Silently dropped (counted) if the queue is full.
    Ignored while the node is down. *)

val set_down : t -> bool -> unit
(** Churn power toggle.  Going down flushes the interface queue, cancels
    the armed CSMA/ACK timers and discards any half-sent frame (no link
    failure is reported — the node died, the link did not).  Going up
    restores a clean idle MAC.  Pair with [Channel.set_attached] so the
    radio also stops receiving. *)

val is_down : t -> bool

val id : t -> Node_id.t
val queue_length : t -> int
val queue_drops : t -> int
val unicast_failures : t -> int
val frames_sent : t -> int
(** Payload frames this MAC put on the air (counting retransmissions,
    not ACKs). *)

val radio : t -> Channel.radio
