(** Discrete-event simulation driver.

    Owns the virtual clock and the event queue.  All simulated activity —
    packet transmissions, protocol timers, mobility waypoints, traffic
    sources — is expressed as events scheduled on one engine. *)

type t

type handle = Event_queue.handle

val create : ?seed:int -> unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root generator.  Subsystems should [Rng.split] it once at
    setup so their streams stay independent. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t time f] schedules [f] at absolute [time], which must not be in
    the past. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** [after t d f] schedules [f] at [now t + d]. *)

val cancel : handle -> unit

val every : t -> ?jitter:(unit -> Time.t) -> start:Time.t -> interval:Time.t
  -> until:Time.t -> (unit -> unit) -> unit
(** [every t ~start ~interval ~until f] runs [f] at [start],
    [start+interval], ... while the firing time is before [until].
    [jitter] adds a per-firing offset; a jittered firing landing at or
    past [until] is skipped (the jitter-free cadence continues).  Raises
    [Invalid_argument] if [interval <= 0] — a zero interval would
    schedule an unbounded same-instant event storm. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in order until the queue drains, the clock passes
    [until], or [max_events] events have fired.  When [until] is given
    and no pending event remains at or before it, the clock ends at
    [until] — idle virtual time passes, so timeouts measured across
    repeated bounded runs behave as expected.  When [max_events] stops
    the run with events still due before the horizon, the clock stays at
    the last fired event so a resumed run never observes time moving
    backwards. *)

val step : t -> bool
(** Fire the single earliest event.  Returns false when idle. *)

val events_processed : t -> int
