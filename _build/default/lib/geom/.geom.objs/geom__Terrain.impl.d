lib/geom/terrain.ml: Float Format Sim Vec2
