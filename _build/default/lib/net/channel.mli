(** Shared radio medium.

    Unit-disk propagation: a transmission reaches exactly the radios
    within [Params.range_m] of the sender at the moment it starts.
    Collision model: a radio that sees two temporally overlapping
    transmissions decodes neither, and a radio that is itself transmitting
    hears nothing.  Carrier sense is binary — the medium is busy for a
    radio whenever at least one in-range transmission is in the air. *)

open Packets

type t

type radio

val create : engine:Sim.Engine.t -> params:Params.t -> t

val params : t -> Params.t

val attach : t -> id:Node_id.t -> position:(unit -> Geom.Vec2.t) -> radio
(** Register a node's radio.  [position] is queried at event times (it
    must be safe to call with the engine's current clock). *)

val set_receiver : radio -> (Frame.t -> unit) -> unit
(** Called with every frame the radio decodes, including frames addressed
    to other nodes (promiscuous reception is the MAC's filtering job). *)

val set_medium_listener : radio -> (bool -> unit) -> unit
(** Called when carrier sense transitions busy<->idle for this radio. *)

val transmit : t -> radio -> Frame.t -> duration:Sim.Time.t -> unit
(** Start a transmission now.  The caller (MAC) is responsible for medium
    access; the channel just propagates. *)

val busy : t -> radio -> bool
(** Carrier sense, including the radio's own transmission. *)

val transmitting : radio -> bool

val radio_id : radio -> Node_id.t

val neighbors_in_range : t -> radio -> Node_id.t list
(** Radios currently within range — used by tests and topology audits,
    not by protocols. *)

val set_transmit_hook : t -> (Node_id.t -> Frame.t -> unit) -> unit
(** Metrics tap invoked at the start of every transmission. *)

val transmissions : t -> int
(** Total frames put on the air so far. *)
