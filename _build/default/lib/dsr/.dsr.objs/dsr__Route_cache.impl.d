lib/dsr/route_cache.ml: Engine List Node_id Packets Sim Time
