lib/core/config.mli: Packets Routing Sim
