lib/experiment/metrics.ml: Data_msg Hashtbl List Net Packets Payload Sim Stats
