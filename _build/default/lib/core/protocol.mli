(** The LDR routing agent.

    Implements the paper's Procedures 1-4 over the {!Conditions}
    predicates and {!Route_table}:

    - Route discovery by expanding-ring RREQ flood; any node satisfying
      SDC answers, so replies come from both sides of the requester
      (unlike AODV, where raising the requested sequence number silences
      downstream nodes).
    - The T-bit path reset: when the flood would violate feasible-distance
      ordering, the first SDC-capable node unicasts the RREQ to the
      destination, which alone may raise its sequence number, resetting
      feasible distances along the reply path.
    - The N-bit reverse-path repair probe.
    - Route maintenance from MAC link-failure feedback, with RERRs.
    - The five Section-4 optimizations, individually switchable in
      {!Config.t}. *)

val factory : ?config:Config.t -> unit -> Routing.Agent.factory

val name : string

type debug = {
  table : Route_table.t;
  own_sn : unit -> Packets.Seqnum.t;
  pending_discoveries : unit -> Packets.Node_id.t list;
}

val factory_with_debug :
  ?config:Config.t -> unit -> Routing.Agent.ctx -> Routing.Agent.t * debug
(** Like {!factory} but also exposes internal state; tests and the
    Figure-1 example use this to inspect invariants mid-run. *)
