lib/dsr/route_cache.mli: Node_id Packets Sim
