(* Log-linear histogram, HdrHistogram-style, specialised to OCaml's
   63-bit immediate ints.

   Bucket layout for sub_bits = p: values in [0, 2^p) map to index v
   (exact, width-1 buckets).  A value v >= 2^p with top bit k
   (2^k <= v < 2^(k+1)) maps to

     index = ((k - p + 1) lsl p) lor ((v - 2^k) lsr (k - p))

   i.e. each power-of-two range [2^k, 2^(k+1)) contributes 2^p
   sub-buckets of width 2^(k-p).  For k = p this continues the linear
   region seamlessly.  k is at most 61 for positive ints, so the
   table has (63 - p) * 2^p slots — about 7k cells (56 KB) at the
   default p = 7. *)

type t = {
  sub_bits : int;
  sub_count : int; (* 2^sub_bits *)
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(sub_bits = 7) () =
  if sub_bits < 0 || sub_bits > 14 then
    invalid_arg "Hdr.create: sub_bits outside [0, 14]";
  let sub_count = 1 lsl sub_bits in
  {
    sub_bits;
    sub_count;
    counts = Array.make ((63 - sub_bits) * sub_count) 0;
    total = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Position of the highest set bit of v > 0, allocation-free (no refs,
   no tuples — just shadowing). *)
let bit_length v =
  let k = if v lsr 32 <> 0 then 32 else 0 in
  let k = if v lsr (k + 16) <> 0 then k + 16 else k in
  let k = if v lsr (k + 8) <> 0 then k + 8 else k in
  let k = if v lsr (k + 4) <> 0 then k + 4 else k in
  let k = if v lsr (k + 2) <> 0 then k + 2 else k in
  if v lsr (k + 1) <> 0 then k + 1 else k

let index t v =
  if v < t.sub_count then v
  else
    let k = bit_length v in
    ((k - t.sub_bits + 1) lsl t.sub_bits)
    lor ((v - (1 lsl k)) lsr (k - t.sub_bits))

(* Inverse: lowest value mapping to index i. *)
let value_at t i =
  if i < t.sub_count then i
  else
    let m = i lsr t.sub_bits in
    let k = m + t.sub_bits - 1 in
    let sub = i land (t.sub_count - 1) in
    (1 lsl k) lor (sub lsl (k - t.sub_bits))

let bucket_width t i =
  if i < t.sub_count then 1
  else
    let k = (i lsr t.sub_bits) + t.sub_bits - 1 in
    1 lsl (k - t.sub_bits)

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let sub_bits t = t.sub_bits

let lowest_equivalent t v =
  let v = if v < 0 then 0 else v in
  value_at t (index t v)

let highest_equivalent t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  value_at t i + bucket_width t i - 1

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Hdr.quantile: q outside [0,1]";
  if t.total = 0 then 0
  else begin
    let r = int_of_float (Float.ceil (q *. float_of_int t.total)) in
    let rank = if r < 1 then 1 else if r > t.total then t.total else r in
    let n = Array.length t.counts in
    let rec walk i cum =
      if i >= n then t.max_v
      else
        let cum = cum + t.counts.(i) in
        if cum >= rank then
          let v = value_at t i + bucket_width t i - 1 in
          if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v
        else walk (i + 1) cum
    in
    walk 0 0
  end

let merge_into ~into src =
  if into.sub_bits <> src.sub_bits then
    invalid_arg "Hdr.merge_into: sub_bits mismatch";
  for i = 0 to Array.length src.counts - 1 do
    let c = src.counts.(i) in
    if c <> 0 then into.counts.(i) <- into.counts.(i) + c
  done;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let iter_buckets t f =
  for i = 0 to Array.length t.counts - 1 do
    let c = t.counts.(i) in
    if c <> 0 then f ~value:(value_at t i + bucket_width t i - 1) ~count:c
  done
