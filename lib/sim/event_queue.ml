type handle = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

(* The heap keeps its sort keys — (time, sequence) — in parallel unboxed
   int arrays beside the handle array.  Sift comparisons then read plain
   ints instead of chasing two handle records per step, and the
   hole-shift sift loops below move each slot once instead of swapping,
   which also halves the pointer-array writes (each of which pays the
   GC write barrier). *)
type t = {
  mutable heap : handle array;
  mutable times : int array;  (* times.(i) = (heap.(i).time :> int) *)
  mutable seqs : int array;  (* seqs.(i) = heap.(i).seq *)
  mutable size : int;
  mutable next_seq : int;
}

let dummy =
  { time = Time.zero; seq = -1; action = ignore; cancelled = true }

let create () =
  {
    heap = Array.make 64 dummy;
    times = Array.make 64 0;
    seqs = Array.make 64 (-1);
    size = 0;
    next_seq = 0;
  }

(* Indices below are maintained in bounds by construction, so unchecked
   accesses are safe. *)

(* Move the hole at [i0] up past every larger parent, then drop the
   saved slot into the final position. *)
let sift_up t i0 h tm sq =
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Array.unsafe_get t.times p in
    if tp > tm || (tp = tm && Array.unsafe_get t.seqs p > sq) then begin
      Array.unsafe_set t.heap !i (Array.unsafe_get t.heap p);
      Array.unsafe_set t.times !i tp;
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set t.heap !i h;
  Array.unsafe_set t.times !i tm;
  Array.unsafe_set t.seqs !i sq

(* Symmetric: move the hole at [0] down past every smaller child. *)
let sift_down t h tm sq =
  let n = t.size in
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= n then moving := false
    else begin
      let r = l + 1 in
      let c =
        if r < n then begin
          let tl = Array.unsafe_get t.times l
          and tr = Array.unsafe_get t.times r in
          if
            tr < tl
            || (tr = tl && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l)
          then r
          else l
        end
        else l
      in
      let tc = Array.unsafe_get t.times c in
      if tc < tm || (tc = tm && Array.unsafe_get t.seqs c < sq) then begin
        Array.unsafe_set t.heap !i (Array.unsafe_get t.heap c);
        Array.unsafe_set t.times !i tc;
        Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs c);
        i := c
      end
      else moving := false
    end
  done;
  Array.unsafe_set t.heap !i h;
  Array.unsafe_set t.times !i tm;
  Array.unsafe_set t.seqs !i sq

let grow t =
  let cap = 2 * Array.length t.heap in
  let heap' = Array.make cap dummy
  and times' = Array.make cap 0
  and seqs' = Array.make cap (-1) in
  Array.blit t.heap 0 heap' 0 t.size;
  Array.blit t.times 0 times' 0 t.size;
  Array.blit t.seqs 0 seqs' 0 t.size;
  t.heap <- heap';
  t.times <- times';
  t.seqs <- seqs'

let schedule t time action =
  if t.size = Array.length t.heap then grow t;
  let seq = t.next_seq in
  let h = { time; seq; action; cancelled = false } in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) h (time :> int) seq;
  h

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

(* Shrink when occupancy falls below a quarter of capacity, so a burst
   scenario does not pin its peak heap for the rest of the run.  The
   quarter threshold (vs the halving grow) leaves hysteresis; the floor
   matches the initial capacity. *)
let maybe_shrink t =
  let cap = Array.length t.heap in
  if cap > 64 && t.size < cap / 4 then begin
    let cap' = cap / 2 in
    t.heap <- Array.sub t.heap 0 cap';
    t.times <- Array.sub t.times 0 cap';
    t.seqs <- Array.sub t.seqs 0 cap'
  end

let remove_top t =
  let last = t.size - 1 in
  t.size <- last;
  let h = t.heap.(last) in
  t.heap.(last) <- dummy;
  if last > 0 then sift_down t h t.times.(last) t.seqs.(last);
  maybe_shrink t

(* Discard cancelled events sitting at the top of the heap. *)
let rec settle t =
  if t.size > 0 && t.heap.(0).cancelled then begin
    remove_top t;
    settle t
  end

let next_time t =
  settle t;
  if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  settle t;
  if t.size = 0 then None
  else begin
    let h = t.heap.(0) in
    remove_top t;
    Some (h.time, h.action)
  end

(* [pop]'s horizon-bounded variant: one settle and one top read decide
   both "is there an event" and "is it due", instead of a [next_time]
   peek followed by a [pop] doing the same work again. *)
let pop_until t limit =
  settle t;
  if t.size = 0 then None
  else begin
    let h = t.heap.(0) in
    if Time.compare h.time limit > 0 then None
    else begin
      remove_top t;
      Some (h.time, h.action)
    end
  end

let is_empty t =
  settle t;
  t.size = 0

let live_count t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n

let capacity t = Array.length t.heap
