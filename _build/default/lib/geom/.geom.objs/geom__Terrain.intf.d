lib/geom/terrain.mli: Format Sim Vec2
