(** MAC-layer frames. *)

open Packets

type dst = Unicast of Node_id.t | Broadcast

type body = Payload of Payload.t | Ack

type t = { src : Node_id.t; dst : dst; body : body }

val addressed_to : t -> Node_id.t -> bool
val is_ack : t -> bool

val class_name : t -> string
(** "ACK", "DATA" or the control kind — the trace label. *)

val size_bytes : t -> int
(** Payload bytes (0 for ACKs). *)

val dst_equal : dst -> dst -> bool
val pp_dst : Format.formatter -> dst -> unit
val pp : Format.formatter -> t -> unit
