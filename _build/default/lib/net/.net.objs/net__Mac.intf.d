lib/net/mac.mli: Channel Frame Geom Node_id Packets Payload Sim
