type point = {
  delivery_ratio : Stats.Welford.t;
  latency_ms : Stats.Welford.t;
  network_load : Stats.Welford.t;
  rreq_load : Stats.Welford.t;
  rrep_init : Stats.Welford.t;
  rrep_recv : Stats.Welford.t;
  mean_dest_seqno : Stats.Welford.t;
}

let empty_point () =
  {
    delivery_ratio = Stats.Welford.create ();
    latency_ms = Stats.Welford.create ();
    network_load = Stats.Welford.create ();
    rreq_load = Stats.Welford.create ();
    rrep_init = Stats.Welford.create ();
    rrep_recv = Stats.Welford.create ();
    mean_dest_seqno = Stats.Welford.create ();
  }

let add_summary p (s : Metrics.summary) =
  Stats.Welford.add p.delivery_ratio s.s_delivery_ratio;
  Stats.Welford.add p.latency_ms s.s_latency_ms;
  Stats.Welford.add p.network_load s.s_network_load;
  Stats.Welford.add p.rreq_load s.s_rreq_load;
  Stats.Welford.add p.rrep_init s.s_rrep_init;
  Stats.Welford.add p.rrep_recv s.s_rrep_recv;
  Stats.Welford.add p.mean_dest_seqno s.s_mean_dest_seqno

let merge_points a b =
  let m = Stats.Welford.merge in
  {
    delivery_ratio = m a.delivery_ratio b.delivery_ratio;
    latency_ms = m a.latency_ms b.latency_ms;
    network_load = m a.network_load b.network_load;
    rreq_load = m a.rreq_load b.rreq_load;
    rrep_init = m a.rrep_init b.rrep_init;
    rrep_recv = m a.rrep_recv b.rrep_recv;
    mean_dest_seqno = m a.mean_dest_seqno b.mean_dest_seqno;
  }

let trials (sc : Scenario.t) ~n =
  let p = empty_point () in
  for i = 0 to n - 1 do
    let outcome = Runner.run { sc with seed = sc.seed + i } in
    add_summary p outcome.summary
  done;
  p

let pause_sweep (sc : Scenario.t) ~pauses ~trials:n =
  List.map (fun pause -> (pause, trials { sc with pause } ~n)) pauses
