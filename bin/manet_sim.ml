(* Command-line front end for the MANET simulator.

     manet_sim run   --protocol ldr --nodes 50 --flows 10 --pause 30 ...
     manet_sim sweep --protocol aodv --pauses 0,120,900 --trials 3 ...

   `run` executes one scenario and prints its metrics; `sweep` produces a
   delivery-ratio series over pause times, like the paper's figures. *)

open Cmdliner
open Experiment
module Time = Sim.Time

let protocol_conv =
  let parse = function
    | "ldr" -> Ok Scenario.ldr
    | "ldr-plain" -> Ok (Scenario.Ldr Ldr.Config.plain)
    | "aodv" -> Ok Scenario.aodv
    | "dsr" -> Ok Scenario.dsr
    | "dsr-draft7" -> Ok Scenario.dsr_draft7
    | "olsr" -> Ok Scenario.olsr
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print fmt p = Format.pp_print_string fmt (Scenario.protocol_name p) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Scenario.ldr
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Routing protocol: ldr, ldr-plain, aodv, dsr, dsr-draft7, olsr.")

let nodes =
  Arg.(value & opt int 50 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let width =
  Arg.(value & opt float 1500. & info [ "width" ] ~docv:"M" ~doc:"Terrain width (m).")

let height =
  Arg.(value & opt float 300. & info [ "height" ] ~docv:"M" ~doc:"Terrain height (m).")

let flows =
  Arg.(value & opt int 10 & info [ "f"; "flows" ] ~docv:"K" ~doc:"Concurrent CBR flows.")

let pps =
  Arg.(value & opt float 4. & info [ "pps" ] ~docv:"R" ~doc:"Packets per second per flow.")

let pause =
  Arg.(
    value & opt float 0.
    & info [ "pause" ] ~docv:"S" ~doc:"Random-waypoint pause time (s).")

let speed_max =
  Arg.(
    value & opt float 20.
    & info [ "speed" ] ~docv:"V" ~doc:"Maximum node speed (m/s); 0 = static.")

let duration =
  Arg.(
    value & opt float 120.
    & info [ "d"; "duration" ] ~docv:"S" ~doc:"Simulated seconds.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"I" ~doc:"Random seed.")

let audit =
  Arg.(
    value & flag
    & info [ "audit-loops" ]
        ~doc:"Audit the successor graph for loops at every routing-table write.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print a per-event run trace (transmissions, deliveries, drops, \
              link failures) to stderr.")

let trials =
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"T" ~doc:"Trials per point (sweep).")

let pauses =
  Arg.(
    value
    & opt (list float) [ 0.; 120.; 900. ]
    & info [ "pauses" ] ~docv:"LIST" ~doc:"Comma-separated pause times (sweep).")

let scenario protocol nodes width height flows pps pause speed_max duration seed
    audit =
  {
    Scenario.label = "cli";
    num_nodes = nodes;
    terrain = Geom.Terrain.create ~width ~height;
    placement = Scenario.Uniform;
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
    pause = Time.sec pause;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = flows;
        packets_per_sec = pps;
        payload_bytes = 512;
        mean_flow_duration = Time.sec 100.;
        startup_window = Time.sec 10.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = audit;
    naive_channel = false;
    heap_scheduler = false;
  }

let print_outcome (o : Runner.outcome) =
  let m = o.metrics in
  Format.printf "originated        %d@." (Metrics.originated m);
  Format.printf "delivered         %d (+%d duplicate copies)@."
    (Metrics.delivered m) (Metrics.duplicates m);
  Format.printf "delivery ratio    %.4f@." (Metrics.delivery_ratio m);
  Format.printf "mean latency      %.2f ms (median %.2f, p95 %.2f)@."
    (Metrics.mean_latency_ms m) (Metrics.median_latency_ms m)
    (Metrics.p95_latency_ms m);
  Format.printf "mean path length  %.2f hops@." (Metrics.mean_hops m);
  Format.printf "network load      %.3f control tx / delivered@."
    (Metrics.network_load m);
  Format.printf "rreq load         %.3f@." (Metrics.rreq_load m);
  Format.printf "control tx        %d@." (Metrics.control_transmissions m);
  List.iter
    (fun (kind, count) -> Format.printf "  %-6s %d@." kind count)
    (Metrics.control_by_kind m);
  Format.printf "data tx (hopwise) %d@." (Metrics.data_transmissions m);
  Format.printf "frames on air     %d@." o.transmissions;
  Format.printf "ifq drops         %d@." o.mac_queue_drops;
  Format.printf "link failures     %d@." o.mac_unicast_failures;
  List.iter
    (fun (reason, count) -> Format.printf "drop %-16s %d@." reason count)
    (Metrics.drops_by_reason m);
  Format.printf "mean dest seqno   %.2f@." (Metrics.mean_dest_seqno m);
  Format.printf "loop violations   %d@." (Metrics.loop_violations m);
  Format.printf "events processed  %d@." o.events_processed

let run_cmd =
  let action protocol nodes width height flows pps pause speed_max duration
      seed audit trace =
    if trace then Trace.enable ();
    let sc =
      scenario protocol nodes width height flows pps pause speed_max duration
        seed audit
    in
    Format.printf "%s: %d nodes on %.0fx%.0fm, %d flows @ %g pps, pause %gs, %gs@."
      (Scenario.protocol_name protocol)
      nodes width height flows pps pause duration;
    print_outcome (Runner.run sc)
  in
  let term =
    Term.(
      const action $ protocol $ nodes $ width $ height $ flows $ pps $ pause
      $ speed_max $ duration $ seed $ audit $ trace)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one scenario and print its metrics.") term

let sweep_cmd =
  let action protocol nodes width height flows pps speed_max duration seed
      trials pauses =
    let rows =
      List.map
        (fun pause ->
          let sc =
            scenario protocol nodes width height flows pps pause speed_max
              duration seed false
          in
          let p = Sweep.trials sc ~n:trials in
          [
            Printf.sprintf "%g" pause;
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.delivery_ratio)
              ~ci:(Stats.Welford.ci95 p.Sweep.delivery_ratio);
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.latency_ms)
              ~ci:(Stats.Welford.ci95 p.Sweep.latency_ms);
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.network_load)
              ~ci:(Stats.Welford.ci95 p.Sweep.network_load);
          ])
        pauses
    in
    print_endline
      (Stats.Table.render
         ~header:[ "pause s"; "delivery"; "latency ms"; "net load" ]
         rows)
  in
  let term =
    Term.(
      const action $ protocol $ nodes $ width $ height $ flows $ pps
      $ speed_max $ duration $ seed $ trials $ pauses)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep pause times and print a figure-style series.")
    term

let () =
  let doc = "MANET routing simulator (LDR / AODV / DSR / OLSR)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "manet_sim" ~doc) [ run_cmd; sweep_cmd ]))
