(** LDR protocol configuration.

    The five [opt_*] switches are the Section-4 optimizations the paper's
    results use; each can be disabled independently for ablation. *)

type t = {
  active_route_timeout : Sim.Time.t;  (** route freshness window (3 s) *)
  my_route_timeout : Sim.Time.t;
      (** lifetime a destination advertises in its own RREPs (6 s) *)
  ring : Routing.Discovery.t;  (** expanding-ring-search schedule *)
  rreq_cache_ttl : Sim.Time.t;
      (** how long engaged-state / duplicate entries persist *)
  buffer_capacity : int;
  buffer_max_age : Sim.Time.t;
  flood_jitter : Sim.Time.t;  (** max uniform delay before relaying a RREQ *)
  data_ttl : int;  (** IP TTL on originated data *)
  opt_multiple_rreps : bool;
      (** relay later RREPs of a computation when strictly stronger *)
  opt_request_as_error : bool;
      (** a solicitation arriving from one's own next hop implies that hop
          lost its route *)
  opt_reduced_distance : bool;
      (** advertise a lowered answering distance in RREQs *)
  reduced_distance_factor : float;  (** 0.8 in the paper *)
  opt_min_lifetime : bool;
      (** don't answer with a route about to expire; relay instead *)
  min_lifetime_fraction : float;  (** 1/3 of active_route_timeout *)
  opt_optimal_ttl : bool;
      (** first-attempt TTL from known distance and requested fd *)
  local_add_ttl : int;
  seqnum_counter_limit : int;
      (** counter wrap point (small values exercise restamping in tests) *)
  multipath : bool;
      (** extension (off by default, not part of the paper's evaluation):
          retain every LFI-feasible neighbor — advertised distance under
          the feasible distance — as an alternate successor, and fail
          over to one instantly on link loss instead of rediscovering.
          Loop-freedom is preserved by the same ordering argument (the
          LFI condition of PDA, which the paper's Section 2.1 surveys). *)
  link_cost : Packets.Node_id.t -> Packets.Node_id.t -> int;
      (** [link_cost self neighbor]: positive symmetric cost of the link
          the node just heard a message over.  Default: hop count
          (constant 1).  The paper assumes unit costs but notes LDR works
          unchanged with general positive symmetric costs — distances and
          feasible distances simply become path costs. *)
}

val default : t
(** Paper parameters, all optimizations on. *)

val plain : t
(** All five optimizations off — the unoptimized protocol, for
    ablations. *)
