lib/routing/agent.mli: Data_msg Net Node_id Packets Payload Sim
