(** Drop-tail interface queue between the routing layer and the MAC. *)

type 'a t

val create : capacity:int -> 'a t

val push : 'a t -> 'a -> bool
(** False (and the element is dropped) when the queue is full. *)

val pop : 'a t -> 'a option

(** [clear t] discards every queued element (churn: a node going down
    flushes its interface queue).  The drop counter is not advanced —
    these are administrative removals, not congestion losses. *)
val clear : 'a t -> unit

val length : 'a t -> int
val is_empty : 'a t -> bool

val drops : 'a t -> int
(** Count of elements rejected by {!push} so far. *)
