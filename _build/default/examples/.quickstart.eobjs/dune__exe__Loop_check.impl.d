examples/loop_check.ml: Experiment Format Geom List Metrics Net Runner Scenario Sim Traffic
