(** Simulation scenario descriptions (paper, Section 4). *)

type protocol =
  | Ldr of Ldr.Config.t
  | Aodv of Aodv.config
  | Dsr of Dsr.config
  | Olsr of Olsr.config
  | Ldr_agg of Ldr.Config.t * Routing.Aggregation.config
      (** LDR with the route-request aggregation layer interposed *)
  | Aodv_agg of Aodv.config * Routing.Aggregation.config
      (** AODV with the route-request aggregation layer interposed *)

val protocol_name : protocol -> string

val ldr : protocol
(** LDR with the paper's optimizations. *)

val ldr_multipath : protocol
(** LDR extended with LFI alternate successors (instant failover). *)

val aodv : protocol
val dsr : protocol
val dsr_draft7 : protocol
(** DSR without replies-from-cache — the behavioural delta the paper's
    Fig-6 QualNet (draft 7) cross-check exercises. *)

val olsr : protocol

val ldr_agg : protocol
(** LDR-AGG: stock LDR under {!Routing.Aggregation.default}. *)

val aodv_agg : protocol
(** AODV-AGG: stock AODV under {!Routing.Aggregation.default}. *)

val factory : protocol -> Routing.Agent.factory

type placement =
  | Uniform  (** i.i.d. uniform over the terrain (the paper's scenarios) *)
  | Grid  (** near-square grid filling the terrain *)
  | Fixed of Geom.Vec2.t list  (** explicit positions, one per node *)

(** Mobility family (see docs/SCENARIOS.md).  All families are inert
    when [speed_max <= 0] — every node is static. *)
type mobility =
  | Waypoint  (** random waypoint — the paper's model (default) *)
  | Manhattan of { spacing : float }
      (** city-block movement on a street lattice [spacing] m apart *)
  | Rpgm of { groups : int; radius : float }
      (** reference-point group mobility: [groups] waypoint group
          centres, members offset uniformly within [radius] m *)

val mobility_name : mobility -> string

type shadowing = { sigma_db : float; eta : float }
(** Log-normal shadowing: per-unordered-pair normal dB offset of spread
    [sigma_db] through path-loss exponent [eta] ({!Net.Link_model}).
    Seeded from the scenario seed — deterministic per link. *)

val default_shadowing : shadowing
(** sigma = 4 dB, eta = 3 — suburban-ish. *)

type churn = {
  churn_frac : float;  (** fraction of nodes that cycle down/up once *)
  crash_frac : float;
      (** of the churners, the fraction that {e crash} (volatile state
          including the own sequence number is lost) rather than leave
          gracefully (sequence number survives the reboot) *)
  down_min : Sim.Time.t;
  down_max : Sim.Time.t;  (** downtime drawn uniformly from the range *)
  churn_start : Sim.Time.t;
  churn_stop : Sim.Time.t;  (** down instants drawn in this window *)
}

val default_churn : churn
(** 20% of nodes cycle once between t=10s and t=60s, half of them
    crashing, staying down 10-30 s. *)

type partition = {
  part_at : Sim.Time.t;
  part_heal : Sim.Time.t;
  part_x_frac : float;
      (** wall abscissa as a fraction of the terrain width *)
}
(** Partition-then-heal: a vertical wall at
    [part_x_frac * terrain.width] absorbs every crossing transmission
    during [\[part_at, part_heal)] ({!Net.Link_model}). *)

type t = {
  label : string;
  num_nodes : int;
  terrain : Geom.Terrain.t;
  placement : placement;
  speed_min : float;
  speed_max : float;
  pause : Sim.Time.t;  (** random-waypoint pause time *)
  duration : Sim.Time.t;
  traffic : Traffic.config;
  protocol : protocol;
  net : Net.Params.t;
  seed : int;
  audit_loops : bool;
      (** audit the successor graph for loops at every routing-table
          change (expensive; tests and the loop-check example use it) *)
  naive_channel : bool;
      (** use the O(nodes)-per-transmission linear-scan channel instead
          of the spatial grid — differential tests and the scaling
          benchmark only; outcomes are byte-identical either way *)
  heap_scheduler : bool;
      (** drive the engine with the reference binary-heap event queue
          instead of the calendar queue — differential tests and the
          engine benchmark only; outcomes are event-for-event
          identical either way *)
  shards : int;
      (** [<= 1] (default 1): classic single-engine run.  [K >= 2]:
          spatially-sharded conservative PDES — the arena splits into K
          vertical regions, each with its own engine, channel and
          metrics, advanced in synchronous lookahead windows
          ({!Sim.Pdes}; see docs/PARALLELISM.md for the determinism
          contract).  [0]: auto — recommended domain count capped at
          the node count. *)
  mobility : mobility;  (** movement family (default [Waypoint]) *)
  shadowing : shadowing option;
  churn : churn option;
  partition : partition option;
  soa : bool;
      (** route node state through the struct-of-arrays hot path:
          positions in a shared {!Mobility.Pos_store}, candidates from
          the incremental {!Geom.Cell_index}, MAC counters in flat
          {!Net.Nodes} planes.  Outcomes are byte-identical to the
          record path (default [false]) — a pure performance axis,
          differential-tested in [test_world.ml]. *)
}

val paper_50 : protocol -> t
(** 50 nodes on 1500 x 300 m. *)

val paper_100 : protocol -> t
(** 100 nodes on 2200 x 600 m. *)

val positions : t -> Sim.Rng.t -> Geom.Vec2.t array
(** Initial node positions per the scenario's placement. *)

val with_flows : int -> t -> t
val with_pause : Sim.Time.t -> t -> t
val with_duration : Sim.Time.t -> t -> t
val with_seed : int -> t -> t
val with_naive_channel : bool -> t -> t
val with_heap_scheduler : bool -> t -> t
val with_shards : int -> t -> t
val with_mobility : mobility -> t -> t
val with_shadowing : shadowing option -> t -> t
val with_churn : churn option -> t -> t
val with_partition : partition option -> t -> t
val with_soa : bool -> t -> t
val scaled : duration:Sim.Time.t -> t -> t
(** Shorten a paper scenario for laptop-scale reproduction. *)
