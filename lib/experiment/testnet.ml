open Sim
open Packets

type t = {
  engine : Engine.t;
  n : int;
  adj : bool array array;
  agents : Routing.Agent.t array;
  net_metrics : Metrics.t;
  mutable flow_counter : int;
}

let hop_delay = Time.ms 1.
(* Broadcast copies arrive staggered so that reply order is a function of
   node ids, which keeps walkthrough scripts deterministic. *)
let stagger = Time.us 100.

let link_failure_delay = Time.ms 10.

let agent t i = t.agents.(i)
let metrics t = t.net_metrics

let connected t a b = t.adj.(a).(b)

let connect t a b =
  if a <> b then begin
    t.adj.(a).(b) <- true;
    t.adj.(b).(a) <- true
  end

let disconnect t a b =
  t.adj.(a).(b) <- false;
  t.adj.(b).(a) <- false

let connect_chain t ids =
  let rec go = function
    | a :: (b :: _ as rest) ->
        connect t a b;
        go rest
    | [ _ ] | [] -> ()
  in
  go ids

let deliver t ~to_ payload ~from =
  t.agents.(to_).Routing.Agent.recv payload ~from:(Node_id.of_int from)

let make_ctx t i =
  let id = Node_id.of_int i in
  {
    Routing.Agent.id;
    engine = t.engine;
    rng = Rng.create (1000 + i);
    send =
      (fun ~dst payload ->
        match dst with
        | Net.Frame.Broadcast ->
            let k = ref 0 in
            for j = 0 to t.n - 1 do
              if t.adj.(i).(j) then begin
                let delay = Time.add hop_delay (Time.mul stagger !k) in
                incr k;
                ignore
                  (Engine.after t.engine delay (fun () ->
                       (* Link state is re-checked at delivery time. *)
                       if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i))
              end
            done
        | Net.Frame.Unicast next ->
            let j = Node_id.to_int next in
            ignore
              (Engine.after t.engine hop_delay (fun () ->
                   if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i
                   else
                     ignore
                       (Engine.after t.engine link_failure_delay (fun () ->
                            t.agents.(i).Routing.Agent.link_failure payload
                              ~next_hop:next)))))
    ;
    deliver =
      (fun msg ->
        Metrics.data_delivered t.net_metrics ~now:(Engine.now t.engine) msg);
    drop_data =
      (fun msg ~reason -> Metrics.data_dropped t.net_metrics msg ~reason);
    event = (fun ?dst:_ name -> Metrics.protocol_event t.net_metrics name);
    table_changed = ignore;
    obs = Obs.Bus.create ();
  }

let null_agent =
  {
    Routing.Agent.origin_data = ignore;
    recv = (fun _ ~from:_ -> ());
    overheard = (fun _ ~from:_ ~dst:_ -> ());
    link_failure = (fun _ ~next_hop:_ -> ());
    start = ignore;
    successor = (fun _ -> None);
    own_seqno = (fun () -> 0.);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (0, 0, 0));
  }

let create_custom ~engine ~factories =
  let n = Array.length factories in
  let t =
    {
      engine;
      n;
      adj = Array.make_matrix n n false;
      agents = Array.make n null_agent;
      net_metrics = Metrics.create ();
      flow_counter = 0;
    }
  in
  for i = 0 to n - 1 do
    t.agents.(i) <- factories.(i) (make_ctx t i)
  done;
  Array.iter (fun (a : Routing.Agent.t) -> a.start ()) t.agents;
  t

let create ~engine ~factory ~n =
  create_custom ~engine ~factories:(Array.make n factory)

let origin t ~src ~dst =
  t.flow_counter <- t.flow_counter + 1;
  let msg =
    Data_msg.fresh ~flow_id:t.flow_counter ~seq:0 ~src:(Node_id.of_int src)
      ~dst:(Node_id.of_int dst) ~payload_bytes:512
      ~origin_time:(Engine.now t.engine)
  in
  Metrics.data_originated t.net_metrics msg;
  t.agents.(src).Routing.Agent.origin_data msg

let delivered t = Metrics.delivered t.net_metrics

let run t ~for_ =
  Engine.run ~until:(Time.add (Engine.now t.engine) for_) t.engine

let audit_loops t =
  for d = 0 to t.n - 1 do
    let dst = Node_id.of_int d in
    for s = 0 to t.n - 1 do
      if s <> d then begin
        let visited = Array.make t.n false in
        let rec walk x =
          if visited.(x) then Metrics.loop_violation t.net_metrics
          else begin
            visited.(x) <- true;
            if x <> d then
              match t.agents.(x).Routing.Agent.successor dst with
              | Some next -> walk (Node_id.to_int next)
              | None -> ()
          end
        in
        walk s
      end
    done
  done
