examples/protocol_comparison.ml: Experiment Geom List Metrics Net Printf Runner Scenario Sim Stats Traffic
