type 'a t = { q : 'a Queue.t; capacity : int; mutable drops : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ifq.create: non-positive capacity";
  { q = Queue.create (); capacity; drops = 0 }

let push t x =
  if Queue.length t.q >= t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    Queue.push x t.q;
    true
  end

let pop t = Queue.take_opt t.q
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let drops t = t.drops
