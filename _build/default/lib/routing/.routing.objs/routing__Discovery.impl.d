lib/routing/discovery.ml: Sim Stdlib Time
