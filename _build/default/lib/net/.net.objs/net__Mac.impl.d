lib/net/mac.ml: Channel Engine Frame Ifq Int64 Node_id Packets Params Payload Rng Sim Stdlib Time
