open Packets

let src = Logs.Src.create "manet" ~doc:"MANET simulator run trace"

module Log = (val Logs.src_log src)

let enable ?(out = Format.err_formatter) () =
  let report _src _level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        Format.kfprintf
          (fun f ->
            Format.pp_print_newline f ();
            over ();
            k ())
          out fmt)
  in
  Logs.set_reporter { Logs.report };
  Logs.Src.set_level src (Some Logs.Debug)

let stamp engine = Sim.Time.to_sec (Sim.Engine.now engine)

(* Tracing sits on the per-transmission hot path; even a disabled
   [Log.debug] allocates its message closure and walks the Logs
   dispatch.  A level check first keeps the disabled case to one read. *)
let on () = Logs.Src.level src = Some Logs.Debug

let transmit engine node frame =
  if on () then
    Log.debug (fun m ->
        m "[%10.6f] %a TX %a" (stamp engine) Node_id.pp node Net.Frame.pp frame)

let deliver engine node msg =
  if on () then
    Log.debug (fun m ->
        m "[%10.6f] %a DELIVER %a (latency %.2f ms, %d hops)" (stamp engine)
          Node_id.pp node Data_msg.pp msg
          (Sim.Time.to_ms
             (Sim.Time.diff (Sim.Engine.now engine) msg.Data_msg.origin_time))
          msg.Data_msg.hops)

let drop engine node msg ~reason =
  if on () then
    Log.debug (fun m ->
        m "[%10.6f] %a DROP %a (%s)" (stamp engine) Node_id.pp node Data_msg.pp
          msg reason)

let link_failure engine node ~next_hop =
  if on () then
    Log.debug (fun m ->
        m "[%10.6f] %a LINK-FAILURE to %a" (stamp engine) Node_id.pp node
          Node_id.pp next_hop)

let protocol_event engine node name =
  if on () then
    Log.debug (fun m ->
        m "[%10.6f] %a EVENT %s" (stamp engine) Node_id.pp node name)
